// E2E's two-level decision-making policy (§4, Algorithm 1).
//
// Top level: hill-climbing over *decision allocations* (how many units of
// load each decision carries) — valid because requests are functionally
// identical, so the server-delay model depends only on the allocation, not
// on which request goes where. Bottom level: for a fixed allocation, the
// optimal request→decision mapping is a maximum-weight bipartite matching
// between external-delay buckets and decision "slots", with edge weight
// equal to the expected QoE of serving that bucket at that slot's delay
// distribution (§4.3, Fig. 12).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/server_delay_model.h"
#include "qoe/objective.h"
#include "qoe/qoe_model.h"
#include "util/types.h"

namespace e2e {

class Bucketizer;

/// Bottom-level mapping algorithm. kTransportation and kOptimalMatching
/// compute the same optimum — the n×n assignment's slot columns are
/// byte-identical per decision, so the matching collapses to an n×D
/// transportation solve (docs/PERFORMANCE.md) — but the transportation
/// formulation is O(n²·D) instead of O(n³). kOptimalMatching keeps the
/// expanded Hungarian solve for cross-checks and A/B benchmarks;
/// kSlopeBased is the heuristic baseline (§7.1) that ranks requests by the
/// QoE derivative at their external delay.
enum class MappingAlgorithm {
  kTransportation,
  kOptimalMatching,
  kSlopeBased,
};

/// Policy configuration.
struct PolicyConfig {
  /// Spatial coarsening (§5): number of equal-population external-delay
  /// buckets (k) and the maximum span of any bucket (delta).
  int target_buckets = 16;
  DelayMs max_bucket_span_ms = 1200.0;

  /// When true, skip coarsening entirely: one bucket per request
  /// ("E2E (basic)" in Fig. 17).
  bool per_request = false;

  MappingAlgorithm mapping = MappingAlgorithm::kTransportation;

  /// Hill-climbing bound; the search almost always converges much earlier.
  int max_hill_climb_steps = 512;

  /// Worker threads for the best-improvement neighbor sweep and for the
  /// per-bucket expected-QoE column precompute on base evaluations: 0 picks
  /// ThreadPool::DefaultWorkers() for this machine, 1 forces the serial
  /// path, N > 1 uses N threads. Any value produces byte-identical tables
  /// and stats: neighbor evaluations are independent given the shared
  /// evaluation cache, results merge in neighbor-index order, and the
  /// column fills write disjoint index slots (docs/PERFORMANCE.md has the
  /// determinism argument).
  int parallel_workers = 1;

  /// Refine load fractions once from the matched bucket weights and re-run
  /// the mapping ("E2E solves the two subproblems iteratively").
  bool refine_fractions = true;

  /// Safety margin against elective overload: the allocation score is
  /// docked this fraction of Q(0) per unit of population routed to a
  /// decision with no steady state. Overload backlogs persist across
  /// decision windows (hysteresis the stateless G cannot predict), so an
  /// allocation that overloads a replica is only chosen when every
  /// allocation must (offered load above total capacity).
  double instability_penalty = 0.15;

  /// Burst headroom used only by the instability check: a decision counts
  /// as overloaded if it would have no steady state at `overload_headroom`
  /// times the planned rate. Delay predictions themselves stay at the
  /// planned rate.
  double overload_headroom = 1.0;

  /// Robust allocation scoring: the hill-climb objective is a mix of the
  /// expected QoE at the planned rate and at `stress_factor` times it
  /// (weight `stress_weight` on the stressed term). Offered load in a real
  /// window swings well above its mean at minute scale; an allocation that
  /// only works at the mean is fragile.
  double stress_factor = 1.3;
  double stress_weight = 0.0;

  /// What the top-level allocation search maximizes (qoe/objective.h). The
  /// default mean-QoE objective scores bit-identically to the historical
  /// evaluator, so stock configs keep producing byte-identical tables. The
  /// bottom-level mapping solve always stays mean-optimal per allocation —
  /// linearity is what keeps it exact — while this objective ranks the
  /// candidate tables those solves produce.
  ObjectiveConfig objective;
};

/// One row of the decision lookup table (§5): requests whose (estimated)
/// external delay falls in [lo, hi) take `decision`.
struct DecisionTableRow {
  DelayMs lo = 0.0;
  DelayMs hi = 0.0;
  int decision = 0;
  double expected_qoe = 0.0;  ///< E[Q] for this bucket under the plan.
  double weight = 0.0;        ///< Population fraction of the bucket.
};

/// The cached artifact the shared-resource service consumes.
struct DecisionTable {
  std::vector<DecisionTableRow> rows;   ///< Sorted by lo.
  std::vector<double> load_fractions;   ///< Resulting per-decision split.
  /// Score of this table under the configured objective (weighted mean
  /// E[Q] for the default mean objective), including any stress mix and
  /// instability dock applied by the allocation search. (The pre-objective
  /// `expected_mean_qoe` accessor rode through one release as a deprecated
  /// alias and is gone; this is the only name.)
  double objective_value = 0.0;

  /// O(log n) decision lookup (out-of-range delays clamp to the
  /// first/last row). Requires a non-empty table.
  int Lookup(DelayMs external_delay_ms) const;

  /// Like Lookup but returns the whole matched row (decision plus its
  /// planned expected QoE and weight). Requires a non-empty table.
  const DecisionTableRow& LookupRow(DelayMs external_delay_ms) const;
};

/// Bookkeeping from one policy computation. All counts are deterministic
/// for a given input and config, independent of `parallel_workers`: the
/// evaluation cache admits each distinct allocation once, so racing
/// threads cannot double-count.
struct PolicyStats {
  int buckets = 0;
  int hill_climb_steps = 0;
  int allocations_evaluated = 0;
  /// Expanded n×n Hungarian solves (mapping == kOptimalMatching).
  int matchings_solved = 0;
  /// Collapsed n×D transportation solves (mapping == kTransportation).
  /// Includes warm-started incremental re-solves — each replaces exactly one
  /// cold solve, so this count is identical with warm starts on or off.
  int transport_solves = 0;
  /// Of the transport_solves, how many were answered by the warm-start
  /// incremental path (replaying only the capacity-affected suffix of the
  /// base solve). Deterministic for a given input/config at any worker
  /// count: the warm anchor is installed only on the serial base
  /// evaluations, and the cache admits each allocation once.
  int warm_resolves = 0;
  /// Neighbor evaluations dispatched through the thread pool (0 on the
  /// serial path).
  int parallel_evals = 0;
};

/// Result of one policy computation.
struct PolicyResult {
  DecisionTable table;
  PolicyStats stats;
};

/// Computes the objective-optimizing decision table for the requests
/// described by `external_delays` arriving at `total_rps`, against the given
/// QoE curve and server-delay model. Thin wrapper over the Bucketizer
/// overload below — it batch-loads the delays into a
/// Bucketizer(config.target_buckets, config.max_bucket_span_ms) and
/// delegates, so both entry points share one solver path and stay
/// byte-identical by construction. Throws when inputs are empty/invalid.
PolicyResult ComputePolicy(const QoeModel& qoe, const ServerDelayModel& g,
                           std::span<const DelayMs> external_delays,
                           double total_rps, const PolicyConfig& config);

/// The canonical entry point: takes a (possibly streamed/merged) Bucketizer,
/// so sharded replays can accumulate per-window stats incrementally and
/// still get byte-identical tables — the streaming bucket view is bitwise
/// equal to the batch one, and when `config.per_request` the bucketizer's
/// sorted sample multiset feeds the same duplicate-collapsing per-request
/// path. The bucketizer's own target_buckets/max_span govern coarsening
/// (config.target_buckets/max_bucket_span_ms are ignored here). Throws when
/// the bucketizer is empty.
PolicyResult ComputePolicy(const QoeModel& qoe, const ServerDelayModel& g,
                           const Bucketizer& external_delays, double total_rps,
                           const PolicyConfig& config);

/// Builds the slope-based baseline's table directly (§7.1): the request
/// bucket with the steepest QoE slope gets the decision with the smallest
/// expected delay. Shares the top-level allocation search with E2E.
PolicyResult ComputeSlopePolicy(const QoeModel& qoe, const ServerDelayModel& g,
                                std::span<const DelayMs> external_delays,
                                double total_rps, PolicyConfig config);

}  // namespace e2e
