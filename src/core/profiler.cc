#include "core/profiler.h"

#include <cstddef>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/event_loop.h"
#include "sim/server.h"
#include "util/thread_pool.h"

namespace e2e {
namespace {

// Everything one load level contributes to the profile, computed
// independently of every other level.
struct LevelOutcome {
  double rps = 0.0;
  std::optional<DiscreteDistribution> delays;
  // True when the level's steady-window delays kept climbing (no steady
  // state); the serial merge below turns this into max_stable_rps.
  bool unstable = false;
};

// Simulates one load level. Pure function of (config, rps, the two RNG
// streams) — levels share no state, which is what makes the parallel sweep
// byte-identical to the serial one.
LevelOutcome RunLevel(const ProfilerConfig& config, double rps,
                      Rng server_rng, Rng arrival_rng) {
  LevelOutcome out;
  out.rps = rps;

  EventLoop loop;
  SimServer server(
      "profilee", loop, config.concurrency,
      MakeConvexLoadProfile(config.base_service_ms, config.capacity,
                            config.service_alpha, config.service_beta,
                            config.jitter_sigma),
      std::move(server_rng));

  std::vector<double> samples;
  const double mean_gap_ms = 1000.0 / rps;
  // Poisson (exponential-gap) open-loop arrivals across the window.
  double t = arrival_rng.ExponentialMean(mean_gap_ms);
  while (t < config.duration_ms) {
    loop.Schedule(t, [&server, &samples]() {
      server.Submit([&samples](const JobTiming& timing) {
        samples.push_back(timing.TotalDelayMs());
      });
    });
    t += arrival_rng.ExponentialMean(mean_gap_ms);
  }
  loop.Run();

  // Discard the warm-up fifth when the sample count allows it, so
  // transients do not bias the profile.
  std::vector<double> steady;
  if (samples.size() >= 200) {
    steady.assign(
        samples.begin() + static_cast<std::ptrdiff_t>(samples.size() / 5),
        samples.end());
  } else {
    steady = samples;
  }
  if (steady.empty()) {
    steady.push_back(config.base_service_ms);
  }
  out.delays =
      DiscreteDistribution::FromSamples(steady, config.distribution_points);

  // Stationarity check: a level whose delays keep climbing through the
  // window has no steady state (the server is overloaded there).
  if (steady.size() >= 40) {
    const std::size_t half = steady.size() / 2;
    double first = 0.0, second = 0.0;
    for (std::size_t i = 0; i < half; ++i) first += steady[i];
    for (std::size_t i = half; i < steady.size(); ++i) second += steady[i];
    first /= static_cast<double>(half);
    second /= static_cast<double>(steady.size() - half);
    out.unstable = second > first * 1.4;
  }
  return out;
}

}  // namespace

LoadProfile ProfileServerOffline(const ProfilerConfig& config) {
  if (config.levels < 1 || config.max_rps <= 0.0 ||
      config.duration_ms <= 0.0 || config.distribution_points < 1 ||
      config.parallel_workers < 0) {
    throw std::invalid_argument("ProfileServerOffline: bad config");
  }
  const std::size_t levels = static_cast<std::size_t>(config.levels);

  // Fork every level's streams up front, serially, in the exact order the
  // historical serial loop forked them (Rng::Fork advances the parent, so
  // the order is semantic). The parallel sweep then only touches pre-forked
  // copies.
  Rng root(config.seed);
  std::vector<Rng> server_rngs;
  std::vector<Rng> arrival_rngs;
  server_rngs.reserve(levels);
  arrival_rngs.reserve(levels);
  for (std::size_t idx = 0; idx < levels; ++idx) {
    const auto level = static_cast<std::uint64_t>(idx + 1);
    server_rngs.push_back(root.Fork(level));
    arrival_rngs.push_back(root.Fork(1000 + level));
  }

  // Per-level sweep: each index writes only its own slot.
  std::vector<LevelOutcome> slots(levels);
  const auto run_level = [&](std::size_t idx) {
    const double rps = config.max_rps * static_cast<double>(idx + 1) /
                       static_cast<double>(config.levels);
    slots[idx] = RunLevel(config, rps, server_rngs[idx], arrival_rngs[idx]);
  };
  const int workers = config.parallel_workers == 0
                          ? ThreadPool::DefaultWorkers()
                          : config.parallel_workers;
  if (workers > 1 && levels > 1) {
    ThreadPool pool(workers);
    pool.ParallelFor(levels, run_level);
  } else {
    for (std::size_t idx = 0; idx < levels; ++idx) run_level(idx);
  }

  // Serial merge in ascending level order — byte-identical to the
  // historical in-loop bookkeeping. Only the first unstable level can pass
  // the max_stable_rps guard (later levels have strictly larger rps), and
  // it backs the ceiling off to the last level before instability showed.
  LoadProfile profile;
  profile.max_rps = config.max_rps;
  for (std::size_t idx = 0; idx < levels; ++idx) {
    LevelOutcome& out = slots[idx];
    profile.level_rps.push_back(out.rps);
    profile.delays.push_back(std::move(*out.delays));
    if (out.unstable &&
        profile.max_stable_rps >
            profile.level_rps[profile.level_rps.size() - 1]) {
      const std::size_t count = profile.level_rps.size();
      profile.max_stable_rps =
          count >= 2 ? profile.level_rps[count - 2] : profile.level_rps[0];
    }
  }
  return profile;
}

}  // namespace e2e
