#include "core/profiler.h"

#include <stdexcept>
#include <vector>

#include "sim/event_loop.h"
#include "sim/server.h"

namespace e2e {

LoadProfile ProfileServerOffline(const ProfilerConfig& config) {
  if (config.levels < 1 || config.max_rps <= 0.0 ||
      config.duration_ms <= 0.0 || config.distribution_points < 1) {
    throw std::invalid_argument("ProfileServerOffline: bad config");
  }
  LoadProfile profile;
  profile.max_rps = config.max_rps;
  Rng root(config.seed);

  for (int level = 1; level <= config.levels; ++level) {
    const double rps = config.max_rps * static_cast<double>(level) /
                       static_cast<double>(config.levels);
    EventLoop loop;
    SimServer server(
        "profilee", loop, config.concurrency,
        MakeConvexLoadProfile(config.base_service_ms, config.capacity,
                              config.service_alpha, config.service_beta,
                              config.jitter_sigma),
        root.Fork(static_cast<std::uint64_t>(level)));
    Rng arrivals = root.Fork(1000 + static_cast<std::uint64_t>(level));

    std::vector<double> samples;
    const double mean_gap_ms = 1000.0 / rps;
    // Poisson (exponential-gap) open-loop arrivals across the window.
    double t = arrivals.ExponentialMean(mean_gap_ms);
    while (t < config.duration_ms) {
      loop.Schedule(t, [&server, &samples]() {
        server.Submit([&samples](const JobTiming& timing) {
          samples.push_back(timing.TotalDelayMs());
        });
      });
      t += arrivals.ExponentialMean(mean_gap_ms);
    }
    loop.Run();

    // Discard the warm-up half when the level is heavily loaded and the
    // sample count allows it, so transients do not bias the profile.
    std::vector<double> steady;
    if (samples.size() >= 200) {
      steady.assign(samples.begin() + static_cast<std::ptrdiff_t>(
                                          samples.size() / 5),
                    samples.end());
    } else {
      steady = samples;
    }
    if (steady.empty()) {
      steady.push_back(config.base_service_ms);
    }
    profile.level_rps.push_back(rps);
    profile.delays.push_back(DiscreteDistribution::FromSamples(
        steady, config.distribution_points));

    // Stationarity check: a level whose delays keep climbing through the
    // window has no steady state (the server is overloaded there). Record
    // the last stable level so interpolation treats anything beyond it as
    // sustained overload.
    if (steady.size() >= 40) {
      const std::size_t half = steady.size() / 2;
      double first = 0.0, second = 0.0;
      for (std::size_t i = 0; i < half; ++i) first += steady[i];
      for (std::size_t i = half; i < steady.size(); ++i) second += steady[i];
      first /= static_cast<double>(half);
      second /= static_cast<double>(steady.size() - half);
      if (second > first * 1.4 &&
          profile.max_stable_rps >
              profile.level_rps[profile.level_rps.size() - 1]) {
        const std::size_t idx = profile.level_rps.size();
        profile.max_stable_rps =
            idx >= 2 ? profile.level_rps[idx - 2] : profile.level_rps[0];
      }
    }
  }
  return profile;
}

}  // namespace e2e
