#include "core/controller.h"

#include <stdexcept>

#include "util/log.h"

namespace e2e {

Controller::Controller(std::string name, ControllerConfig config,
                       QoeModelPtr qoe,
                       std::shared_ptr<const ServerDelayModel> server_model,
                       std::uint64_t seed, const Clock* clock)
    : name_(std::move(name)),
      config_(config),
      qoe_(std::move(qoe)),
      server_model_(std::move(server_model)),
      external_model_(config.external),
      cache_(config.cache),
      clock_(clock != nullptr ? clock : &VirtualClock::Frozen()),
      rng_(seed) {
  if (qoe_ == nullptr) {
    throw std::invalid_argument("Controller: null QoE model");
  }
  if (server_model_ == nullptr) {
    throw std::invalid_argument("Controller: null server-delay model");
  }
  if (config_.shards < 0) {
    throw std::invalid_argument("Controller: negative shard count");
  }
}

void Controller::ObserveArrival(DelayMs external_delay_ms, double now_ms) {
  ++stats_.observations;
  external_model_.Observe(external_delay_ms, now_ms);
}

void Controller::SetDecisionPenalties(std::vector<double> penalties_ms) {
  if (!penalties_ms.empty() &&
      static_cast<int>(penalties_ms.size()) != server_model_->NumDecisions()) {
    throw std::invalid_argument(
        "Controller::SetDecisionPenalties: size != decisions");
  }
  penalties_ms_ = std::move(penalties_ms);
}

void Controller::SetLoadDiscount(double fraction) {
  if (fraction < 0.0 || fraction >= 1.0) {
    throw std::invalid_argument(
        "Controller::SetLoadDiscount: fraction outside [0, 1)");
  }
  load_discount_ = fraction;
}

void Controller::AttachTelemetry(obs::MetricsRegistry& registry,
                                 obs::Tracer* tracer,
                                 const std::string& prefix) {
  tracer_ = tracer;
  span_name_ = prefix + ".recompute";
  metric_ticks_ = &registry.AddCounter(prefix + ".ticks");
  metric_recomputes_ = &registry.AddCounter(prefix + ".recomputes");
  metric_decisions_ = &registry.AddCounter(prefix + ".decisions");
  metric_transport_solves_ =
      &registry.AddCounter(prefix + ".policy.transport_solves");
  metric_parallel_evals_ =
      &registry.AddCounter(prefix + ".policy.parallel_evals");
  metric_recompute_us_ = &registry.AddHistogram(
      prefix + ".recompute_us",
      {10.0, 50.0, 100.0, 500.0, 1000.0, 5000.0, 10000.0, 50000.0, 100000.0,
       500000.0});
  metric_staleness_ = &registry.AddHistogram(
      prefix + ".table_staleness_ms",
      {500.0, 1000.0, 2500.0, 5000.0, 10000.0, 25000.0, 50000.0, 100000.0,
       250000.0});
}

bool Controller::Tick(double now_ms) {
  ++stats_.ticks;
  if (metric_ticks_ != nullptr) {
    metric_ticks_->Increment();
    // Decision staleness: how old the serving table is at this tick.
    if (cache_.Get() != nullptr) {
      metric_staleness_->Observe(now_ms - last_install_ms_);
    }
  }
  if (failed_) return false;
  external_model_.MaybeRoll(now_ms);
  if (!external_model_.HasDistribution()) return false;

  double rps = external_model_.PredictedRps(rng_) * config_.rps_planning_factor;
  // Abandonment-aware planning: sessions that quit stop offering load, so
  // the next window carries only the surviving fraction. Guarded so the
  // default (0) keeps the historical multiplication-free code path — and
  // its exact bytes.
  if (load_discount_ > 0.0) rps *= 1.0 - load_discount_;
  if (rps <= 0.0) return false;
  if (!cache_.NeedsRefresh(external_model_.Samples(), rps)) return false;

  // Estimate each sample as the controller would see it (error-injected).
  std::vector<double> estimated;
  estimated.reserve(external_model_.Samples().size());
  for (double c : external_model_.Samples()) {
    estimated.push_back(external_model_.EstimateForRequest(c, rng_));
  }

  obs::Span span;
  if (tracer_ != nullptr) span = tracer_->StartSpan(span_name_);
  const double start_us = clock_->NowMicros();
  PolicyResult result = [&] {
    if (penalties_ms_.empty()) {
      return ComputePolicy(*qoe_, *server_model_, estimated, rps,
                           config_.policy);
    }
    // Placement co-design: solve against the penalty-shifted view of the
    // cluster so weight drifts off replicas resilience cannot rescue.
    const PenalizedServerModel penalized(*server_model_, penalties_ms_);
    return ComputePolicy(*qoe_, penalized, estimated, rps, config_.policy);
  }();
  const double cost_us = clock_->NowMicros() - start_us;
  span.End();
  stats_.total_recompute_wall_us += cost_us;
  ++stats_.recomputes;
  stats_.last_policy_stats = result.stats;
  if (metric_recomputes_ != nullptr) {
    metric_recomputes_->Increment();
    metric_recompute_us_->Observe(cost_us);
    metric_transport_solves_->Increment(
        static_cast<std::uint64_t>(result.stats.transport_solves));
    metric_parallel_evals_->Increment(
        static_cast<std::uint64_t>(result.stats.parallel_evals));
  }

  if (LogEnabled(LogLevel::kDebug)) {
    LogStream log(LogLevel::kDebug, name_);
    log << "t=" << now_ms << " rps=" << rps << " buckets="
        << result.stats.buckets << " expectedQ="
        << result.table.objective_value << " fractions:";
    for (double f : result.table.load_fractions) log << ' ' << f;
  }
  cache_.Install(std::move(result.table),
                 std::vector<double>(external_model_.Samples().begin(),
                                     external_model_.Samples().end()),
                 rps);
  last_install_ms_ = now_ms;
  return true;
}

int Controller::Decide(DelayMs true_external_delay_ms) {
  const DecisionTable* table = cache_.Get();
  if (table == nullptr) return -1;
  const double start_us = clock_->NowMicros();
  const DelayMs estimate =
      external_model_.EstimateForRequest(true_external_delay_ms, rng_);
  const int decision = table->Lookup(estimate);
  stats_.total_lookup_wall_us += clock_->NowMicros() - start_us;
  ++stats_.decisions;
  if (metric_decisions_ != nullptr) metric_decisions_->Increment();
  return decision;
}

void Controller::AdoptStateFrom(const Controller& other) {
  cache_ = other.cache_;
  external_model_ = other.external_model_;
  last_install_ms_ = other.last_install_ms_;
}

}  // namespace e2e
