// Temporal coarsening (§5): cache the decision lookup table and recompute
// only when an input distribution has changed by a significant amount,
// measured by Jensen-Shannon divergence between the external-delay
// distribution snapshotted at install time and the current one (plus a
// relative change test on the offered load).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/policy.h"

namespace e2e {

/// Cache configuration.
struct TableCacheParams {
  /// J-S divergence (bits) above which the table is considered stale.
  double js_threshold = 0.04;
  /// Histogram bins for the divergence test.
  int js_bins = 16;
  /// Histogram support (ms); external delays clamp into this range.
  double support_lo_ms = 0.0;
  double support_hi_ms = 30000.0;
  /// Relative offered-load change that also invalidates the table.
  double rps_change_threshold = 0.25;
};

/// The cached decision table plus staleness detection.
class DecisionTableCache {
 public:
  explicit DecisionTableCache(TableCacheParams params);

  /// True when there is no table yet, or the new window's distribution/load
  /// diverges from the installed snapshot beyond the thresholds.
  bool NeedsRefresh(std::span<const double> window_samples,
                    double window_rps) const;

  /// Installs a freshly computed table along with the window it was
  /// computed from.
  void Install(DecisionTable table, std::vector<double> snapshot_samples,
               double snapshot_rps);

  /// The current table, or nullptr before the first install.
  const DecisionTable* Get() const {
    return has_table_ ? &table_ : nullptr;
  }

  /// Drops the cached table (used by failover tests).
  void Invalidate();

  /// Number of Install() calls.
  std::uint64_t installs() const { return installs_; }

  /// Number of NeedsRefresh() calls that returned false (cache hits).
  std::uint64_t hits() const { return hits_; }

 private:
  TableCacheParams params_;
  bool has_table_ = false;
  DecisionTable table_;
  std::vector<double> snapshot_;
  double snapshot_rps_ = 0.0;
  std::uint64_t installs_ = 0;
  mutable std::uint64_t hits_ = 0;
};

}  // namespace e2e
