// Server-side delay models: G(z, Z) in the paper's formulation (§4.1).
//
// Given a decision (replica index / priority level) and the full allocation
// of load across decisions, the model returns the *distribution* of
// server-side delay a request assigned to that decision will experience
// (§4.3 uses the distribution, not a point estimate, when weighting edges).
#pragma once

#include <limits>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "stats/distribution.h"
#include "util/rng.h"
#include "util/types.h"

namespace e2e {

/// Abstract G(.): per-decision server-side delay distribution as a function
/// of how the offered load is split across decisions.
class ServerDelayModel {
 public:
  virtual ~ServerDelayModel() = default;

  /// Number of possible decisions (replicas or priority levels).
  virtual int NumDecisions() const = 0;

  /// Delay distribution for a request assigned to `decision` when the
  /// offered load splits as `load_fractions` (one entry per decision,
  /// summing to ~1) at `total_rps` requests/second overall.
  virtual DiscreteDistribution DelayDistribution(
      int decision, std::span<const double> load_fractions,
      double total_rps) const = 0;

  /// Model name for reports.
  virtual std::string Name() const = 0;

  /// True when a request routed to `decision` under this split faces a
  /// server with no steady state (sustained overload). The policy uses this
  /// to avoid *electively* overloading a decision: predicted QoE alone
  /// cannot see the backlog hysteresis overload causes across windows.
  virtual bool IsOverloaded(int decision,
                            std::span<const double> load_fractions,
                            double total_rps) const {
    (void)decision;
    (void)load_fractions;
    (void)total_rps;
    return false;
  }
};

/// Non-owning decorator that shifts each decision's delay distribution by a
/// per-decision penalty. The placement co-design (docs/RESILIENCE.md) uses
/// it inside Controller::Tick: a replica whose breaker is rejecting and
/// whose predicted cloning gain is zero is made to look `penalty_ms` slower
/// to the policy solve, so the transportation step shifts weight away until
/// the replica recovers. The base model must outlive the decorator; the
/// penalty vector must have exactly NumDecisions() entries.
class PenalizedServerModel final : public ServerDelayModel {
 public:
  PenalizedServerModel(const ServerDelayModel& base,
                       std::span<const double> penalties_ms)
      : base_(base), penalties_ms_(penalties_ms.begin(), penalties_ms.end()) {
    if (static_cast<int>(penalties_ms_.size()) != base.NumDecisions()) {
      throw std::invalid_argument(
          "PenalizedServerModel: penalty count != decisions");
    }
  }

  int NumDecisions() const override { return base_.NumDecisions(); }
  DiscreteDistribution DelayDistribution(
      int decision, std::span<const double> load_fractions,
      double total_rps) const override {
    const DiscreteDistribution d =
        base_.DelayDistribution(decision, load_fractions, total_rps);
    const double penalty = penalties_ms_[static_cast<std::size_t>(decision)];
    return penalty == 0.0 ? d : d.ShiftedBy(penalty);
  }
  std::string Name() const override { return base_.Name() + "+penalized"; }
  bool IsOverloaded(int decision, std::span<const double> load_fractions,
                    double total_rps) const override {
    return base_.IsOverloaded(decision, load_fractions, total_rps);
  }

 private:
  const ServerDelayModel& base_;
  std::vector<double> penalties_ms_;
};

/// A load→delay profile for one server, measured offline (§6: "we measure
/// the processing delays of one server under different input loads:
/// {5%, 10%, ..., 100%} of the maximum number of requests per second").
struct LoadProfile {
  double max_rps = 0.0;                       ///< Load of the last level.
  std::vector<double> level_rps;              ///< Ascending profiled loads.
  std::vector<DiscreteDistribution> delays;   ///< One distribution per level.

  /// Largest profiled load at which delays were *stationary* (no steady
  /// growth through the measurement window). Levels beyond this have no
  /// steady state; the profiler detects them by comparing first- and
  /// second-half means. Infinity when every level was stable.
  double max_stable_rps = std::numeric_limits<double>::infinity();

  /// Sustained-overload model: offered load beyond the stable region builds
  /// backlog for the rest of the update horizon, adding
  /// (rps/stable - 1) * overload_horizon_ms of queueing delay. Linear
  /// extrapolation would badly underestimate this.
  double overload_horizon_ms = 120000.0;
};

/// Interpolates a profile at an arbitrary offered load. Loads beyond the
/// profiled maximum add horizon-bounded backlog delay (see
/// LoadProfile::overload_horizon_ms). Distributions interpolate pointwise
/// across equal-size quantile supports.
DiscreteDistribution InterpolateProfile(const LoadProfile& profile,
                                        double rps);

/// G(.) for the replicated database: each replica follows the same offline
/// profile; a replica's delay depends only on the RPS routed to it.
class ProfiledReplicaModel final : public ServerDelayModel {
 public:
  /// `replicas` identical replicas sharing one `profile`.
  ProfiledReplicaModel(int replicas, LoadProfile profile);

  int NumDecisions() const override { return replicas_; }
  DiscreteDistribution DelayDistribution(
      int decision, std::span<const double> load_fractions,
      double total_rps) const override;
  std::string Name() const override { return "profiled-replica"; }
  bool IsOverloaded(int decision, std::span<const double> load_fractions,
                    double total_rps) const override;

  const LoadProfile& profile() const { return profile_; }

 private:
  int replicas_;
  LoadProfile profile_;
};

/// G(.) for the priority-queue broker, from non-preemptive priority
/// queueing theory: a message at priority p waits behind the residual
/// service plus the backlogs of levels <= p, i.e.
///   W_p = W0 / ((1 - sigma_{p-1}) (1 - sigma_p)),  sigma_p = sum_{k<=p} rho_k
/// with deterministic service (one pull per consume interval). Overload is
/// clamped to a horizon-bounded backlog delay.
class PriorityQueueModel final : public ServerDelayModel {
 public:
  /// `levels` priority levels; consumers drain one message every
  /// `consume_interval_ms` across `num_consumers` consumers.
  PriorityQueueModel(int levels, double consume_interval_ms, int num_consumers,
                     double handling_cost_ms = 0.5,
                     double overload_horizon_ms = 10000.0);

  int NumDecisions() const override { return levels_; }
  DiscreteDistribution DelayDistribution(
      int decision, std::span<const double> load_fractions,
      double total_rps) const override;
  std::string Name() const override { return "priority-queue"; }
  bool IsOverloaded(int decision, std::span<const double> load_fractions,
                    double total_rps) const override;

  /// Mean waiting time at a priority level (exposed for tests).
  double MeanWaitMs(int decision, std::span<const double> load_fractions,
                    double total_rps) const;

 private:
  int levels_;
  double consume_interval_ms_;
  int num_consumers_;
  double handling_cost_ms_;
  double overload_horizon_ms_;
};

}  // namespace e2e
