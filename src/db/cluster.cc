#include "db/cluster.h"

#include <stdexcept>
#include <utility>

namespace e2e::db {

ReplicaGroup::ReplicaGroup(int index, EventLoop& loop,
                           const ClusterParams& params, Rng rng)
    : index_(index),
      server_("replica-" + std::to_string(index), loop,
              params.concurrency_per_replica,
              MakeConvexLoadProfile(params.base_service_ms, params.capacity,
                                    params.service_alpha, params.service_beta,
                                    params.jitter_sigma),
              rng) {}

Cluster::Cluster(EventLoop& loop, ClusterParams params, Rng rng)
    : loop_(loop), params_(params) {
  if (params_.replica_groups < 1) {
    throw std::invalid_argument("Cluster: replica_groups < 1");
  }
  for (int i = 0; i < params_.replica_groups; ++i) {
    replicas_.push_back(std::make_unique<ReplicaGroup>(
        i, loop_, params_, rng.Fork(static_cast<std::uint64_t>(i))));
  }
}

void Cluster::LoadDataset(std::size_t num_keys, std::size_t value_bytes) {
  // Every replica group stores a full copy (the replication strategy the
  // paper adopts for E2E: choose a replica group per request).
  const std::string payload(value_bytes, 'v');
  for (auto& replica : replicas_) {
    for (std::size_t k = 0; k < num_keys; ++k) {
      replica->storage().Put(static_cast<Key>(k), payload);
    }
    replica->storage().Flush();
    replica->storage().Compact();
  }
}

void Cluster::RangeRead(Key start, std::size_t count, int replica,
                        std::function<void(ReadResult)> done) {
  if (replica < 0 || replica >= NumReplicas()) {
    throw std::out_of_range("Cluster::RangeRead: bad replica index");
  }
  if (!done) {
    throw std::invalid_argument("Cluster::RangeRead: empty callback");
  }
  ReplicaGroup& group = *replicas_[static_cast<std::size_t>(replica)];
  ReplicaMetrics* metrics =
      metrics_.empty() ? nullptr : &metrics_[static_cast<std::size_t>(replica)];
  group.server().Submit(
      [&group, start, count, replica, metrics, done = std::move(done)](
          const JobTiming& timing) {
        if (metrics != nullptr) {
          metrics->reads->Increment();
          metrics->service_ms->Observe(timing.ServiceDelayMs());
        }
        ReadResult result;
        result.rows = group.storage().RangeQuery(start, count);
        result.replica = replica;
        result.timing = timing;
        done(std::move(result));
      });
}

void Cluster::Read(Key key, int replica,
                   std::function<void(PointReadResult)> done) {
  if (replica < 0 || replica >= NumReplicas()) {
    throw std::out_of_range("Cluster::Read: bad replica index");
  }
  if (!done) {
    throw std::invalid_argument("Cluster::Read: empty callback");
  }
  ReplicaGroup& group = *replicas_[static_cast<std::size_t>(replica)];
  group.server().Submit([&group, key, replica,
                         done = std::move(done)](const JobTiming& timing) {
    PointReadResult result;
    result.value = group.storage().Get(key);
    result.replica = replica;
    result.timing = timing;
    done(std::move(result));
  });
}

namespace {

// Shared fan-out state for a replicated mutation.
struct WriteFanout {
  WriteResult result;
  int quorum = 1;
  int acked = 0;
  std::function<void(WriteResult)> done;
};

}  // namespace

void Cluster::Write(Key key, std::string value, int quorum,
                    std::function<void(WriteResult)> done) {
  if (quorum < 1 || quorum > NumReplicas()) {
    throw std::invalid_argument("Cluster::Write: bad quorum");
  }
  if (!done) {
    throw std::invalid_argument("Cluster::Write: empty callback");
  }
  auto fanout = std::make_shared<WriteFanout>();
  fanout->result.key = key;
  fanout->result.start_ms = loop_.Now();
  fanout->quorum = quorum;
  fanout->done = std::move(done);
  for (auto& replica : replicas_) {
    ReplicaGroup& group = *replica;
    group.server().Submit(
        [&group, key, value, fanout, this](const JobTiming&) {
          group.storage().Put(key, value);
          if (++fanout->acked == fanout->quorum) {
            fanout->result.acked_replicas = fanout->acked;
            fanout->result.quorum_ms = loop_.Now();
            fanout->done(fanout->result);
          }
        });
  }
}

void Cluster::Delete(Key key, int quorum,
                     std::function<void(WriteResult)> done) {
  if (quorum < 1 || quorum > NumReplicas()) {
    throw std::invalid_argument("Cluster::Delete: bad quorum");
  }
  if (!done) {
    throw std::invalid_argument("Cluster::Delete: empty callback");
  }
  auto fanout = std::make_shared<WriteFanout>();
  fanout->result.key = key;
  fanout->result.start_ms = loop_.Now();
  fanout->quorum = quorum;
  fanout->done = std::move(done);
  for (auto& replica : replicas_) {
    ReplicaGroup& group = *replica;
    group.server().Submit([&group, key, fanout, this](const JobTiming&) {
      group.storage().Delete(key);
      if (++fanout->acked == fanout->quorum) {
        fanout->result.acked_replicas = fanout->acked;
        fanout->result.quorum_ms = loop_.Now();
        fanout->done(fanout->result);
      }
    });
  }
}

void Cluster::SetReplicaExtraDelayMs(int replica, double extra_ms) {
  if (replica < -1 || replica >= NumReplicas()) {
    throw std::out_of_range("Cluster::SetReplicaExtraDelayMs: bad replica");
  }
  for (int r = 0; r < NumReplicas(); ++r) {
    if (replica == -1 || replica == r) {
      replicas_[static_cast<std::size_t>(r)]->server().SetExtraServiceDelayMs(
          extra_ms);
    }
  }
}

void Cluster::SetReplicaPartitioned(int replica, bool partitioned) {
  if (replica < -1 || replica >= NumReplicas()) {
    throw std::out_of_range("Cluster::SetReplicaPartitioned: bad replica");
  }
  for (int r = 0; r < NumReplicas(); ++r) {
    if (replica == -1 || replica == r) {
      replicas_[static_cast<std::size_t>(r)]->SetPartitioned(partitioned);
    }
  }
}

bool Cluster::IsPartitioned(int replica) const {
  if (replica < 0 || replica >= NumReplicas()) {
    throw std::out_of_range("Cluster::IsPartitioned: bad replica");
  }
  return replicas_[static_cast<std::size_t>(replica)]->partitioned();
}

void Cluster::AttachMetrics(obs::MetricsRegistry& registry) {
  metrics_.clear();
  for (int r = 0; r < NumReplicas(); ++r) {
    const std::string prefix = "db.replica" + std::to_string(r);
    ReplicaMetrics metrics;
    metrics.reads = &registry.AddCounter(prefix + ".reads");
    metrics.service_ms = &registry.AddHistogram(
        prefix + ".service_ms",
        {10.0, 25.0, 50.0, 75.0, 100.0, 150.0, 250.0, 500.0, 1000.0, 2500.0,
         5000.0});
    metrics_.push_back(metrics);
  }
}

ClusterView Cluster::View() const {
  ClusterView view;
  view.loads.reserve(replicas_.size());
  view.recent_delay_ms.reserve(replicas_.size());
  for (const auto& replica : replicas_) {
    view.loads.push_back(replica->server().Load());
    view.recent_delay_ms.push_back(
        replica->server().total_delay_stats().count() == 0
            ? 0.0
            : replica->server().total_delay_stats().mean());
  }
  return view;
}

ReadExecutor::ReadExecutor(Cluster& cluster,
                           std::shared_ptr<ReplicaSelector> selector)
    : cluster_(cluster), selector_(std::move(selector)) {
  if (selector_ == nullptr) {
    throw std::invalid_argument("ReadExecutor: null selector");
  }
}

void ReadExecutor::AttachMetrics(obs::MetricsRegistry& registry) {
  metric_requests_ = &registry.AddCounter("db.requests");
  metric_failovers_ = &registry.AddCounter("db.failovers");
}

void ReadExecutor::ExecuteRangeRead(const DbRequest& request,
                                    std::function<void(ReadResult)> done) {
  if (metric_requests_ != nullptr) metric_requests_->Increment();
  const ClusterView view = cluster_.View();
  const int selected = selector_->SelectReplica(request, view);
  int replica = selected;
  if (cluster_.IsPartitioned(selected)) {
    // Fail over to the least-loaded reachable replica (lowest index on
    // ties, so the reroute is deterministic). When every replica is
    // partitioned the original choice serves anyway: a fully partitioned
    // cluster stalls requests rather than losing them.
    int best = -1;
    for (int r = 0; r < cluster_.NumReplicas(); ++r) {
      if (cluster_.IsPartitioned(r)) continue;
      if (best == -1 || view.loads[static_cast<std::size_t>(r)] <
                            view.loads[static_cast<std::size_t>(best)]) {
        best = r;
      }
    }
    if (best != -1) {
      replica = best;
      ++failovers_;
      if (metric_failovers_ != nullptr) metric_failovers_->Increment();
    }
  }
  const bool failed_over = replica != selected;
  cluster_.RangeRead(request.range_start, request.range_count, replica,
                     [failed_over, done = std::move(done)](ReadResult result) {
                       result.failed_over = failed_over;
                       done(std::move(result));
                     });
}

void ReadExecutor::SetSelector(std::shared_ptr<ReplicaSelector> selector) {
  if (selector == nullptr) {
    throw std::invalid_argument("ReadExecutor::SetSelector: null selector");
  }
  selector_ = std::move(selector);
}

}  // namespace e2e::db
