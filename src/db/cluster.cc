#include "db/cluster.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace e2e::db {

ReplicaGroup::ReplicaGroup(int index, EventLoop& loop,
                           const ClusterParams& params, Rng rng)
    : index_(index),
      server_("replica-" + std::to_string(index), loop,
              params.concurrency_per_replica,
              MakeConvexLoadProfile(params.base_service_ms, params.capacity,
                                    params.service_alpha, params.service_beta,
                                    params.jitter_sigma),
              rng) {}

Cluster::Cluster(EventLoop& loop, ClusterParams params, Rng rng)
    : loop_(loop), params_(params) {
  if (params_.replica_groups < 1) {
    throw std::invalid_argument("Cluster: replica_groups < 1");
  }
  for (int i = 0; i < params_.replica_groups; ++i) {
    replicas_.push_back(std::make_unique<ReplicaGroup>(
        i, loop_, params_, rng.Fork(static_cast<std::uint64_t>(i))));
  }
}

void Cluster::LoadDataset(std::size_t num_keys, std::size_t value_bytes) {
  // Every replica group stores a full copy (the replication strategy the
  // paper adopts for E2E: choose a replica group per request).
  const std::string payload(value_bytes, 'v');
  for (auto& replica : replicas_) {
    for (std::size_t k = 0; k < num_keys; ++k) {
      replica->storage().Put(static_cast<Key>(k), payload);
    }
    replica->storage().Flush();
    replica->storage().Compact();
  }
}

void Cluster::RangeRead(Key start, std::size_t count, int replica,
                        std::function<void(ReadResult)> done) {
  if (replica < 0 || replica >= NumReplicas()) {
    throw std::out_of_range("Cluster::RangeRead: bad replica index");
  }
  if (!done) {
    throw std::invalid_argument("Cluster::RangeRead: empty callback");
  }
  ReplicaGroup& group = *replicas_[static_cast<std::size_t>(replica)];
  ReplicaMetrics* metrics =
      metrics_.empty() ? nullptr : &metrics_[static_cast<std::size_t>(replica)];
  group.server().Submit(
      [&group, start, count, replica, metrics, done = std::move(done)](
          const JobTiming& timing) {
        if (metrics != nullptr) {
          metrics->reads->Increment();
          metrics->service_ms->Observe(timing.ServiceDelayMs());
        }
        ReadResult result;
        result.rows = group.storage().RangeQuery(start, count);
        result.replica = replica;
        result.timing = timing;
        done(std::move(result));
      });
}

void Cluster::Read(Key key, int replica,
                   std::function<void(PointReadResult)> done) {
  if (replica < 0 || replica >= NumReplicas()) {
    throw std::out_of_range("Cluster::Read: bad replica index");
  }
  if (!done) {
    throw std::invalid_argument("Cluster::Read: empty callback");
  }
  ReplicaGroup& group = *replicas_[static_cast<std::size_t>(replica)];
  group.server().Submit([&group, key, replica,
                         done = std::move(done)](const JobTiming& timing) {
    PointReadResult result;
    result.value = group.storage().Get(key);
    result.replica = replica;
    result.timing = timing;
    done(std::move(result));
  });
}

namespace {

// Shared fan-out state for a replicated mutation.
struct WriteFanout {
  WriteResult result;
  int quorum = 1;
  int acked = 0;
  std::function<void(WriteResult)> done;
};

}  // namespace

void Cluster::Write(Key key, std::string value, int quorum,
                    std::function<void(WriteResult)> done) {
  if (quorum < 1 || quorum > NumReplicas()) {
    throw std::invalid_argument("Cluster::Write: bad quorum");
  }
  if (!done) {
    throw std::invalid_argument("Cluster::Write: empty callback");
  }
  auto fanout = std::make_shared<WriteFanout>();
  fanout->result.key = key;
  fanout->result.start_ms = loop_.Now();
  fanout->quorum = quorum;
  fanout->done = std::move(done);
  for (auto& replica : replicas_) {
    ReplicaGroup& group = *replica;
    group.server().Submit(
        [&group, key, value, fanout, this](const JobTiming&) {
          group.storage().Put(key, value);
          if (++fanout->acked == fanout->quorum) {
            fanout->result.acked_replicas = fanout->acked;
            fanout->result.quorum_ms = loop_.Now();
            fanout->done(fanout->result);
          }
        });
  }
}

void Cluster::Delete(Key key, int quorum,
                     std::function<void(WriteResult)> done) {
  if (quorum < 1 || quorum > NumReplicas()) {
    throw std::invalid_argument("Cluster::Delete: bad quorum");
  }
  if (!done) {
    throw std::invalid_argument("Cluster::Delete: empty callback");
  }
  auto fanout = std::make_shared<WriteFanout>();
  fanout->result.key = key;
  fanout->result.start_ms = loop_.Now();
  fanout->quorum = quorum;
  fanout->done = std::move(done);
  for (auto& replica : replicas_) {
    ReplicaGroup& group = *replica;
    group.server().Submit([&group, key, fanout, this](const JobTiming&) {
      group.storage().Delete(key);
      if (++fanout->acked == fanout->quorum) {
        fanout->result.acked_replicas = fanout->acked;
        fanout->result.quorum_ms = loop_.Now();
        fanout->done(fanout->result);
      }
    });
  }
}

void Cluster::SetReplicaExtraDelayMs(int replica, double extra_ms) {
  if (replica < -1 || replica >= NumReplicas()) {
    throw std::out_of_range("Cluster::SetReplicaExtraDelayMs: bad replica");
  }
  for (int r = 0; r < NumReplicas(); ++r) {
    if (replica == -1 || replica == r) {
      replicas_[static_cast<std::size_t>(r)]->server().SetExtraServiceDelayMs(
          extra_ms);
    }
  }
}

void Cluster::SetReplicaPartitioned(int replica, bool partitioned) {
  if (replica < -1 || replica >= NumReplicas()) {
    throw std::out_of_range("Cluster::SetReplicaPartitioned: bad replica");
  }
  for (int r = 0; r < NumReplicas(); ++r) {
    if (replica == -1 || replica == r) {
      replicas_[static_cast<std::size_t>(r)]->SetPartitioned(partitioned);
    }
  }
}

bool Cluster::IsPartitioned(int replica) const {
  if (replica < 0 || replica >= NumReplicas()) {
    throw std::out_of_range("Cluster::IsPartitioned: bad replica");
  }
  return replicas_[static_cast<std::size_t>(replica)]->partitioned();
}

void Cluster::AttachMetrics(obs::MetricsRegistry& registry) {
  metrics_.clear();
  for (int r = 0; r < NumReplicas(); ++r) {
    const std::string prefix = "db.replica" + std::to_string(r);
    ReplicaMetrics metrics;
    metrics.reads = &registry.AddCounter(prefix + ".reads");
    metrics.service_ms = &registry.AddHistogram(
        prefix + ".service_ms",
        {10.0, 25.0, 50.0, 75.0, 100.0, 150.0, 250.0, 500.0, 1000.0, 2500.0,
         5000.0});
    metrics_.push_back(metrics);
  }
}

ClusterView Cluster::View() const {
  ClusterView view;
  view.loads.reserve(replicas_.size());
  view.recent_delay_ms.reserve(replicas_.size());
  for (const auto& replica : replicas_) {
    view.loads.push_back(replica->server().Load());
    view.recent_delay_ms.push_back(
        replica->server().total_delay_stats().count() == 0
            ? 0.0
            : replica->server().total_delay_stats().mean());
  }
  return view;
}

ReadExecutor::ReadExecutor(Cluster& cluster,
                           std::shared_ptr<ReplicaSelector> selector)
    : cluster_(cluster), selector_(std::move(selector)) {
  if (selector_ == nullptr) {
    throw std::invalid_argument("ReadExecutor: null selector");
  }
}

void ReadExecutor::AttachMetrics(obs::MetricsRegistry& registry) {
  metric_requests_ = &registry.AddCounter("db.requests");
  metric_failovers_ = &registry.AddCounter("db.failovers");
}

void ReadExecutor::ExecuteRangeRead(const DbRequest& request,
                                    std::function<void(ReadResult)> done) {
  if (metric_requests_ != nullptr) metric_requests_->Increment();
  if (resilience_enabled_) {
    IssueWithRetries(request, std::move(done), 0, cluster_.loop().Now());
    return;
  }
  const ClusterView view = cluster_.View();
  const int selected = selector_->SelectReplica(request, view);
  int replica = selected;
  if (cluster_.IsPartitioned(selected)) {
    // Fail over to the least-loaded reachable replica (lowest index on
    // ties, so the reroute is deterministic). When every replica is
    // partitioned the original choice serves anyway: a fully partitioned
    // cluster stalls requests rather than losing them.
    int best = -1;
    for (int r = 0; r < cluster_.NumReplicas(); ++r) {
      if (cluster_.IsPartitioned(r)) continue;
      if (best == -1 || view.loads[static_cast<std::size_t>(r)] <
                            view.loads[static_cast<std::size_t>(best)]) {
        best = r;
      }
    }
    if (best != -1) {
      replica = best;
      ++failovers_;
      if (metric_failovers_ != nullptr) metric_failovers_->Increment();
    }
  }
  const bool failed_over = replica != selected;
  cluster_.RangeRead(request.range_start, request.range_count, replica,
                     [failed_over, done = std::move(done)](ReadResult result) {
                       result.failed_over = failed_over;
                       done(std::move(result));
                     });
}

void ReadExecutor::EnableResilience(
    const resilience::ResilienceConfig& config, Rng rng,
    std::function<SensitivityClass(const DbRequest&)> classify) {
  resilience_enabled_ = true;
  resil_config_ = config;
  classify_ = std::move(classify);
  retry_.emplace(config.retry, rng);
  effective_hedge_fraction_ = config.hedge.max_hedge_fraction;
  effective_target_load_ = config.hedge.max_target_load;
  model_driven_ = config.hedge.enabled &&
                  config.hedge.mode == resilience::HedgeMode::kModelDriven;
  if (model_driven_) {
    const resilience::CloningModelConfig& model = config.hedge.model;
    cloning_model_.emplace(model);  // Validates the knobs.
    service_window_.emplace(model.target_buckets, model.max_span_ms);
    next_model_recompute_ms_ = cluster_.loop().Now() + model.window_ms;
    util_window_start_ms_ = cluster_.loop().Now();
    busy_at_window_start_ms_ = ClusterBusyServerMs(util_window_start_ms_);
  }
  breakers_.clear();
  slowness_.clear();
  breaker_spans_.resize(static_cast<std::size_t>(cluster_.NumReplicas()));
  for (int r = 0; r < cluster_.NumReplicas(); ++r) {
    breakers_.emplace_back(config.breaker);
    slowness_.emplace_back(config.breaker);
    breakers_.back().SetTransitionHook(
        [this, r](resilience::CircuitBreaker::State from,
                  resilience::CircuitBreaker::State to, double) {
          if (metric_breaker_transitions_ != nullptr) {
            metric_breaker_transitions_->Increment();
          }
          if (tracer_ == nullptr) return;
          auto& span = breaker_spans_[static_cast<std::size_t>(r)];
          if (to == resilience::CircuitBreaker::State::kOpen) {
            span = tracer_->StartSpan("resilience.db.replica" +
                                      std::to_string(r) + ".open");
          } else if (from == resilience::CircuitBreaker::State::kOpen) {
            span.End();
          }
        });
  }
}

void ReadExecutor::AttachResilienceMetrics(obs::MetricsRegistry& registry,
                                           obs::Tracer* tracer) {
  metric_retries_ = &registry.AddCounter("db.resilience.retries");
  metric_retries_exhausted_ =
      &registry.AddCounter("db.resilience.retries_exhausted");
  metric_hedges_ = &registry.AddCounter("db.resilience.hedges");
  metric_hedge_wins_ = &registry.AddCounter("db.resilience.hedge_wins");
  metric_hedge_cancels_ = &registry.AddCounter("db.resilience.hedge_cancels");
  metric_breaker_transitions_ =
      &registry.AddCounter("db.resilience.breaker_transitions");
  if (model_driven_) {
    metric_model_recomputes_ =
        &registry.AddCounter("db.resilience.model.recomputes");
    metric_model_fraction_ =
        &registry.AddGauge("db.resilience.model.hedge_fraction");
    metric_model_target_load_ =
        &registry.AddGauge("db.resilience.model.target_load");
    metric_model_gain_ =
        &registry.AddGauge("db.resilience.model.predicted_gain_ms");
  }
  tracer_ = tracer;
}

void ReadExecutor::MaybeRecomputeBudgets(double now_ms) {
  if (!model_driven_) return;
  const resilience::CloningModelConfig& model = resil_config_.hedge.model;
  while (now_ms >= next_model_recompute_ms_) {
    next_model_recompute_ms_ += model.window_ms;
    // Thin windows (cold start, lulls) keep accumulating into the same
    // summary instead of deriving gates from noise; the previous gates —
    // the static config at cold start — stay in force.
    const double elapsed_ms = now_ms - util_window_start_ms_;
    if (elapsed_ms <= 0.0 ||
        service_window_->sample_count() <
            static_cast<std::size_t>(model.min_samples)) {
      continue;
    }
    // Busy-period utilization: the replicas' exact ∫ in_service dt over the
    // window, divided by the servable capacity (capacity knee × replicas ×
    // elapsed time). This is the rho0 the PS model is defined over; the
    // arrival-sampled load mean it replaces conflated "load seen by
    // arrivals" with "time-average load" and mis-gated the hedge budget
    // whenever arrivals bunched onto busy periods.
    const double knee = cluster_.params().capacity *
                        static_cast<double>(cluster_.NumReplicas());
    const double busy_now_ms = ClusterBusyServerMs(now_ms);
    const double utilization =
        knee > 0.0
            ? (busy_now_ms - busy_at_window_start_ms_) / (elapsed_ms * knee)
            : 0.0;
    last_prediction_ = cloning_model_->Predict(*service_window_, utilization);
    // The static knobs are the operator's floor. The PS model assumes
    // synchronized full cloning, so it undervalues the delay-triggered
    // hedge path (which clones only stragglers, at a fraction of the
    // modeled cost, and only into replicas the target-load gate already
    // certifies as near-idle — the meltdown feedback loop is bounded
    // before the model ever runs). Where the model predicts a significant
    // gain the budget opens up to the derived gates; where it predicts
    // none — or one inside its own error bar (min_gain_fraction) — the
    // static gates stay in force rather than closing a rescue path the
    // model cannot see.
    if (last_prediction_.max_hedge_fraction > 0.0 &&
        last_prediction_.predicted_gain_ms >
            model.min_gain_fraction * last_prediction_.base_response_ms) {
      effective_hedge_fraction_ =
          std::max(last_prediction_.max_hedge_fraction,
                   resil_config_.hedge.max_hedge_fraction);
      effective_target_load_ = std::max(last_prediction_.max_target_load,
                                        resil_config_.hedge.max_target_load);
    } else {
      effective_hedge_fraction_ = resil_config_.hedge.max_hedge_fraction;
      effective_target_load_ = resil_config_.hedge.max_target_load;
    }
    ++resil_stats_.model_recomputes;
    if (metric_model_recomputes_ != nullptr) {
      metric_model_recomputes_->Increment();
      metric_model_fraction_->Set(effective_hedge_fraction_);
      metric_model_target_load_->Set(effective_target_load_);
      metric_model_gain_->Set(last_prediction_.predicted_gain_ms);
    }
    service_window_.emplace(model.target_buckets, model.max_span_ms);
    util_window_start_ms_ = now_ms;
    busy_at_window_start_ms_ = busy_now_ms;
  }
}

double ReadExecutor::ClusterBusyServerMs(double now_ms) const {
  double total = 0.0;
  const Cluster& cluster = cluster_;
  for (int r = 0; r < cluster.NumReplicas(); ++r) {
    total += cluster.replica(r).server().BusyServerMs(now_ms);
  }
  return total;
}

std::vector<ReplicaResilienceSnapshot> ReadExecutor::SnapshotResilience(
    double now_ms) const {
  std::vector<ReplicaResilienceSnapshot> snaps;
  if (!resilience_enabled_) return snaps;
  const ClusterView view = cluster_.View();
  const double capacity = cluster_.params().capacity;
  const double budget =
      effective_hedge_fraction_ * static_cast<double>(primary_reads_) -
      static_cast<double>(resil_stats_.hedges_issued);
  const double budget_remaining = budget > 0.0 ? budget : 0.0;
  snaps.reserve(static_cast<std::size_t>(cluster_.NumReplicas()));
  for (int r = 0; r < cluster_.NumReplicas(); ++r) {
    ReplicaResilienceSnapshot snap;
    snap.replica = r;
    const auto idx = static_cast<std::size_t>(r);
    if (!breakers_.empty()) snap.breaker_state = breakers_[idx].state();
    snap.utilization = capacity > 0.0 ? view.loads[idx] / capacity : 0.0;
    if (model_driven_ && last_prediction_.mean_service_ms > 0.0) {
      snap.predicted_gain_ms =
          cloning_model_
              ->Predict(last_prediction_.mean_service_ms,
                        last_prediction_.min_of_two_ms, snap.utilization)
              .predicted_gain_ms;
    }
    const bool rejecting =
        !breakers_.empty() && !breakers_[idx].WouldAllow(now_ms);
    // A rejecting replica is still fine for placement when the hedge path
    // can rescue its sensitive reads: a positive predicted cloning gain and
    // budget headroom mean every read routed there gets a zero-delay clone.
    // Static mode has no model, so it never reports un-rescuable (the
    // placement penalty stays a model-driven co-design).
    snap.rescuable = !rejecting ||
                     (model_driven_ && snap.predicted_gain_ms > 0.0 &&
                      budget_remaining >= 1.0);
    if (!slowness_.empty() && slowness_[idx].baseline_ms() > 0.0) {
      const double excess =
          view.recent_delay_ms[idx] - slowness_[idx].baseline_ms();
      snap.excess_delay_ms = excess > 0.0 ? excess : 0.0;
    }
    snap.hedge_budget_remaining = budget_remaining;
    snaps.push_back(snap);
  }
  return snaps;
}

resilience::BreakerStats ReadExecutor::TotalBreakerStats() const {
  resilience::BreakerStats total;
  for (const auto& breaker : breakers_) {
    total.opens += breaker.stats().opens;
    total.half_opens += breaker.stats().half_opens;
    total.closes += breaker.stats().closes;
    total.rejections += breaker.stats().rejections;
  }
  return total;
}

bool ReadExecutor::RouteAllowed(int replica, double now_ms) {
  if (cluster_.IsPartitioned(replica)) return false;
  if (breakers_.empty()) return true;
  return breakers_[static_cast<std::size_t>(replica)].AllowRequest(now_ms);
}

int ReadExecutor::BestAvailable(const ClusterView& view, double now_ms,
                                int exclude) const {
  int best = -1;
  for (int r = 0; r < cluster_.NumReplicas(); ++r) {
    if (r == exclude) continue;
    if (cluster_.IsPartitioned(r)) continue;
    if (!breakers_.empty() &&
        !breakers_[static_cast<std::size_t>(r)].WouldAllow(now_ms)) {
      continue;
    }
    if (best == -1 || view.loads[static_cast<std::size_t>(r)] <
                          view.loads[static_cast<std::size_t>(best)]) {
      best = r;
    }
  }
  return best;
}

void ReadExecutor::RecordBreakerOutcome(int replica, const JobTiming& timing) {
  if (breakers_.empty()) return;
  auto& breaker = breakers_[static_cast<std::size_t>(replica)];
  const double now = cluster_.loop().Now();
  if (slowness_[static_cast<std::size_t>(replica)].RecordAndClassify(
          timing.TotalDelayMs())) {
    breaker.RecordFailure(now);
  } else {
    breaker.RecordSuccess(now);
  }
}

void ReadExecutor::IssueWithRetries(const DbRequest& request,
                                    std::function<void(ReadResult)> done,
                                    int failures, double first_start_ms) {
  EventLoop& loop = cluster_.loop();
  const double now = loop.Now();
  MaybeRecomputeBudgets(now);
  const ClusterView view = cluster_.View();
  const int selected = selector_->SelectReplica(request, view);
  if (!cluster_.IsPartitioned(selected)) {
    // Reachable: the QoE-aware selection always stands. A breaker never
    // overrides the primary route — wholesale rerouting a replica's share
    // onto survivors that run near their capacity knee melts the cluster,
    // and the controller already re-places traffic on its update cycle.
    // Instead an open breaker redirects the hedge budget: a sensitive
    // request headed into a known-bad replica is cloned immediately (zero
    // hedge delay) rather than after its class delay, still subject to the
    // budget and the idle-capacity gate.
    const bool breaker_ok = RouteAllowed(selected, now);
    auto state = std::make_shared<ReadState>();
    state->done = std::move(done);
    IssueRead(request, selected, selected, /*is_hedge=*/false, state);
    if (resil_config_.hedge.enabled && request.hedge_delay_ms > 0.0 &&
        cluster_.NumReplicas() > 1) {
      const SensitivityClass cls =
          classify_ ? classify_(request) : SensitivityClass::kSensitive;
      const bool rescue = !breaker_ok && cls == SensitivityClass::kSensitive;
      ScheduleHedge(request, selected, selected, state,
                    rescue ? 0.0 : request.hedge_delay_ms);
    }
    return;
  }
  // The selected replica is partitioned: fail over to the best available
  // replica (breaker-aware, least-loaded)...
  const int best = BestAvailable(view, now, selected);
  int replica = best != -1 && RouteAllowed(best, now) ? best : -1;
  if (replica == -1) {
    // ...or, when breakers are open on every reachable replica, to the
    // least-loaded reachable one regardless: backing off would only stack
    // latency onto an already-slow cluster (a retry storm). Backoff is
    // reserved for true unavailability (every replica partitioned), where
    // waiting out the fault window genuinely helps.
    for (int r = 0; r < cluster_.NumReplicas(); ++r) {
      if (cluster_.IsPartitioned(r)) continue;
      if (replica == -1 || view.loads[static_cast<std::size_t>(r)] <
                               view.loads[static_cast<std::size_t>(replica)]) {
        replica = r;
      }
    }
  }
  if (replica != -1) {
    ++failovers_;
    if (metric_failovers_ != nullptr) metric_failovers_->Increment();
    auto state = std::make_shared<ReadState>();
    state->done = std::move(done);
    IssueRead(request, replica, selected, /*is_hedge=*/false, state);
    if (resil_config_.hedge.enabled && request.hedge_delay_ms > 0.0 &&
        cluster_.NumReplicas() > 1) {
      ScheduleHedge(request, replica, selected, state,
                    request.hedge_delay_ms);
    }
    return;
  }
  // Nothing reachable: ask the retry policy for a delayed re-selection.
  const SensitivityClass cls =
      classify_ ? classify_(request) : SensitivityClass::kSensitive;
  const std::optional<double> backoff =
      retry_->NextBackoffMs(failures + 1, now - first_start_ms, cls);
  if (backoff.has_value()) {
    ++resil_stats_.retries;
    if (metric_retries_ != nullptr) metric_retries_->Increment();
    loop.ScheduleAfter(*backoff, [this, request, done = std::move(done),
                                  failures, first_start_ms]() mutable {
      IssueWithRetries(request, std::move(done), failures + 1,
                       first_start_ms);
    });
    return;
  }
  // Budget/deadline/attempts exhausted: serve via the selected replica
  // anyway — a fully unavailable cluster stalls requests, never loses
  // them (same semantics as the non-resilient path).
  ++resil_stats_.retries_exhausted;
  if (metric_retries_exhausted_ != nullptr) {
    metric_retries_exhausted_->Increment();
  }
  auto state = std::make_shared<ReadState>();
  state->done = std::move(done);
  IssueRead(request, selected, selected, /*is_hedge=*/false, state);
}

void ReadExecutor::ScheduleHedge(const DbRequest& request, int primary,
                                 int selected,
                                 std::shared_ptr<ReadState> state,
                                 double delay_ms) {
  state->hedge_timer = cluster_.loop().ScheduleAfter(
      delay_ms,
      [this, request, primary, selected, state]() {
        state->hedge_timer = 0;
        if (state->completed) return;
        // Hedge budget: a clone is real load and the cluster runs near its
        // knee, so hedging is capped at a fraction of primary reads to keep
        // added load from feeding back into more slow reads (and thus more
        // hedges). Counter comparison only — bit-reproducible.
        if (static_cast<double>(resil_stats_.hedges_issued) >=
            effective_hedge_fraction_ *
                static_cast<double>(primary_reads_)) {
          return;
        }
        const double now = cluster_.loop().Now();
        const ClusterView view = cluster_.View();
        const int best = BestAvailable(view, now, primary);
        if (best == -1) return;
        // Hedge only into idle capacity: a clone on a busy replica slows
        // every request already queued there for one tail-shaving win. In
        // kModelDriven mode both this gate and the budget above are the
        // cloning model's per-window derivations rather than the static
        // knobs (docs/RESILIENCE.md).
        if (view.loads[static_cast<std::size_t>(best)] >
            effective_target_load_ *
                cluster_.params().capacity) {
          return;
        }
        if (!RouteAllowed(best, now)) return;
        ++resil_stats_.hedges_issued;
        if (metric_hedges_ != nullptr) metric_hedges_->Increment();
        IssueRead(request, best, selected, /*is_hedge=*/true, state);
      });
}

void ReadExecutor::IssueRead(const DbRequest& request, int replica,
                             int selected, bool is_hedge,
                             std::shared_ptr<ReadState> state) {
  if (!is_hedge) ++primary_reads_;
  // The model's service-time summary is fed from the sensitive class only:
  // that is the class the hedge budget rescues, and the E2E placement
  // deliberately serves insensitive traffic from a slow sacrificial
  // replica whose service times would masquerade as a heavy tail and talk
  // the model into hedging against intentional slowness.
  const bool model_sample =
      model_driven_ &&
      (classify_ ? classify_(request) : SensitivityClass::kSensitive) ==
          SensitivityClass::kSensitive;
  cluster_.RangeRead(
      request.range_start, request.range_count, replica,
      [this, replica, selected, is_hedge, model_sample,
       state = std::move(state)](ReadResult result) {
        if (model_sample) {
          // PS service requirement: the service delay alone (queueing is
          // what the model predicts, not what it consumes as input).
          service_window_->Add(result.timing.ServiceDelayMs());
        }
        RecordBreakerOutcome(replica, result.timing);
        if (state->completed) {
          // Loser of a hedged pair: the other read already served the
          // request, so this response is discarded (and accounted).
          ++resil_stats_.hedges_cancelled;
          if (metric_hedge_cancels_ != nullptr) {
            metric_hedge_cancels_->Increment();
          }
          return;
        }
        state->completed = true;
        if (state->hedge_timer != 0) {
          // The hedge never fired; one response, nothing to discard.
          (void)cluster_.loop().Cancel(state->hedge_timer);
          state->hedge_timer = 0;
        }
        if (is_hedge) {
          ++resil_stats_.hedges_won;
          if (metric_hedge_wins_ != nullptr) metric_hedge_wins_->Increment();
        }
        result.failed_over = replica != selected;
        state->done(std::move(result));
      });
}

void ReadExecutor::SetSelector(std::shared_ptr<ReplicaSelector> selector) {
  if (selector == nullptr) {
    throw std::invalid_argument("ReadExecutor::SetSelector: null selector");
  }
  selector_ = std::move(selector);
}

}  // namespace e2e::db
