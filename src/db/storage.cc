#include "db/storage.h"

#include <algorithm>
#include <set>

namespace e2e::db {

StorageEngine::StorageEngine(std::size_t memtable_limit, std::size_t max_runs)
    : memtable_limit_(std::max<std::size_t>(memtable_limit, 1)),
      max_runs_(std::max<std::size_t>(max_runs, 1)) {}

void StorageEngine::Put(Key key, std::string value) {
  memtable_[key] = std::move(value);
  if (memtable_.size() >= memtable_limit_) Flush();
}

void StorageEngine::Delete(Key key) {
  memtable_[key] = std::nullopt;
  if (memtable_.size() >= memtable_limit_) Flush();
}

const StorageEngine::Versioned* StorageEngine::FindNewest(Key key) const {
  if (const auto it = memtable_.find(key); it != memtable_.end()) {
    return &it->second;
  }
  for (auto run = runs_.rbegin(); run != runs_.rend(); ++run) {
    const auto it = std::lower_bound(
        run->begin(), run->end(), key,
        [](const auto& entry, Key k) { return entry.first < k; });
    if (it != run->end() && it->first == key) return &it->second;
  }
  return nullptr;
}

std::optional<std::string> StorageEngine::Get(Key key) const {
  const Versioned* v = FindNewest(key);
  if (v == nullptr || !v->has_value()) return std::nullopt;
  return **v;
}

std::vector<Row> StorageEngine::RangeQuery(Key start,
                                           std::size_t count) const {
  std::vector<Row> out;
  if (count == 0) return out;

  // Cursors over memtable and each run, all positioned at >= start; at each
  // step take the smallest key, resolving the newest version across sources.
  struct Cursor {
    // Newer sources get higher priority; memtable is newest.
    int priority;
    std::size_t pos;
    const Run* run;                                 // null for memtable
    std::map<Key, Versioned>::const_iterator mem_it;  // memtable only
  };

  std::vector<Cursor> cursors;
  Cursor mem{.priority = static_cast<int>(runs_.size()),
             .pos = 0,
             .run = nullptr,
             .mem_it = memtable_.lower_bound(start)};
  cursors.push_back(mem);
  for (std::size_t i = 0; i < runs_.size(); ++i) {
    const Run& run = runs_[i];
    const auto it = std::lower_bound(
        run.begin(), run.end(), start,
        [](const auto& entry, Key k) { return entry.first < k; });
    cursors.push_back(Cursor{.priority = static_cast<int>(i),
                             .pos = static_cast<std::size_t>(it - run.begin()),
                             .run = &run,
                             .mem_it = {}});
  }

  auto current_key = [&](const Cursor& c) -> std::optional<Key> {
    if (c.run == nullptr) {
      if (c.mem_it == memtable_.end()) return std::nullopt;
      return c.mem_it->first;
    }
    if (c.pos >= c.run->size()) return std::nullopt;
    return (*c.run)[c.pos].first;
  };
  auto current_value = [&](const Cursor& c) -> const Versioned& {
    return c.run == nullptr ? c.mem_it->second : (*c.run)[c.pos].second;
  };
  auto advance = [&](Cursor& c) {
    if (c.run == nullptr) {
      ++c.mem_it;
    } else {
      ++c.pos;
    }
  };

  while (out.size() < count) {
    std::optional<Key> next;
    for (const Cursor& c : cursors) {
      const auto k = current_key(c);
      if (k.has_value() && (!next.has_value() || *k < *next)) next = k;
    }
    if (!next.has_value()) break;

    // Resolve newest version of `next` and advance every cursor sitting on it.
    const Versioned* winner = nullptr;
    int best_priority = -1;
    for (Cursor& c : cursors) {
      const auto k = current_key(c);
      if (!k.has_value() || *k != *next) continue;
      if (c.priority > best_priority) {
        best_priority = c.priority;
        winner = &current_value(c);
      }
      advance(c);
    }
    if (winner != nullptr && winner->has_value()) {
      out.push_back(Row{*next, **winner});
    }
  }
  return out;
}

void StorageEngine::Flush() {
  if (memtable_.empty()) return;
  Run run;
  run.reserve(memtable_.size());
  for (auto& [key, value] : memtable_) {
    run.emplace_back(key, std::move(value));
  }
  memtable_.clear();
  runs_.push_back(std::move(run));
  if (runs_.size() > max_runs_) Compact();
}

void StorageEngine::Compact() {
  // Full merge: collect newest versions, drop tombstones.
  std::map<Key, Versioned> merged;
  for (const Run& run : runs_) {  // oldest first; later writes overwrite.
    for (const auto& [key, value] : run) merged[key] = value;
  }
  for (const auto& [key, value] : memtable_) merged[key] = value;
  memtable_.clear();
  runs_.clear();
  Run combined;
  combined.reserve(merged.size());
  for (auto& [key, value] : merged) {
    if (value.has_value()) combined.emplace_back(key, std::move(value));
  }
  if (!combined.empty()) runs_.push_back(std::move(combined));
}

std::size_t StorageEngine::LiveKeyCount() const {
  std::set<Key> seen;
  std::size_t live = 0;
  auto visit = [&](Key key, const Versioned& value) {
    if (seen.insert(key).second && value.has_value()) ++live;
  };
  for (const auto& [key, value] : memtable_) visit(key, value);
  for (auto run = runs_.rbegin(); run != runs_.rend(); ++run) {
    for (const auto& [key, value] : *run) visit(key, value);
  }
  return live;
}

}  // namespace e2e::db
