#include "db/selector.h"

#include <algorithm>
#include <stdexcept>

namespace e2e::db {

int LoadBalancedSelector::SelectReplica(const DbRequest& /*request*/,
                                        const ClusterView& view) {
  if (view.loads.empty()) {
    throw std::invalid_argument("LoadBalancedSelector: empty view");
  }
  // Least loaded; ties rotate so equal-load replicas share traffic evenly.
  int best = -1;
  int best_load = 0;
  const std::size_t n = view.loads.size();
  for (std::size_t offset = 0; offset < n; ++offset) {
    const std::size_t i = (next_ + offset) % n;
    if (best < 0 || view.loads[i] < best_load) {
      best = static_cast<int>(i);
      best_load = view.loads[i];
    }
  }
  next_ = (static_cast<std::size_t>(best) + 1) % n;
  return best;
}

int LatencyAwareSelector::SelectReplica(const DbRequest& /*request*/,
                                        const ClusterView& view) {
  if (view.loads.empty()) {
    throw std::invalid_argument("LatencyAwareSelector: empty view");
  }
  int best = -1;
  double best_score = 0.0;
  const std::size_t n = view.loads.size();
  for (std::size_t offset = 0; offset < n; ++offset) {
    const std::size_t i = (next_ + offset) % n;
    const double observed =
        i < view.recent_delay_ms.size() ? view.recent_delay_ms[i] : 0.0;
    const double score =
        observed + load_weight_ms_ * static_cast<double>(view.loads[i]);
    if (best < 0 || score < best_score) {
      best = static_cast<int>(i);
      best_score = score;
    }
  }
  next_ = (static_cast<std::size_t>(best) + 1) % n;
  return best;
}

int RandomSelector::SelectReplica(const DbRequest& /*request*/,
                                  const ClusterView& view) {
  if (view.loads.empty()) {
    throw std::invalid_argument("RandomSelector: empty view");
  }
  return static_cast<int>(rng_.UniformInt(
      0, static_cast<std::int64_t>(view.loads.size()) - 1));
}

void TableSelector::SetTable(std::vector<Entry> entries) {
  for (std::size_t i = 1; i < entries.size(); ++i) {
    if (entries[i].lo < entries[i - 1].lo) {
      throw std::invalid_argument("TableSelector: entries not sorted");
    }
  }
  for (const Entry& e : entries) {
    if (e.probabilities.empty()) {
      throw std::invalid_argument("TableSelector: entry without probabilities");
    }
  }
  entries_ = std::move(entries);
}

int TableSelector::SelectReplica(const DbRequest& request,
                                 const ClusterView& view) {
  if (view.loads.empty()) {
    throw std::invalid_argument("TableSelector: empty view");
  }
  if (entries_.empty()) {
    // No table yet (or total controller failure): fall back to the default
    // load-balanced behaviour (§5, fault tolerance).
    const std::size_t n = view.loads.size();
    const std::size_t pick = fallback_next_ % n;
    fallback_next_ = (fallback_next_ + 1) % n;
    return static_cast<int>(pick);
  }
  // Binary search the bucket containing the request's external delay.
  std::size_t lo = 0;
  std::size_t hi = entries_.size();
  while (lo + 1 < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (request.external_delay_ms >= entries_[mid].lo) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const Entry& entry = entries_[lo];
  const auto pick = rng_.Categorical(entry.probabilities);
  return static_cast<int>(
      std::min<std::size_t>(pick, view.loads.size() - 1));
}

}  // namespace e2e::db
