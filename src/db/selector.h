// Replica-selection policies (the decision surface E2E controls in the
// database use case).
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/types.h"

namespace e2e::db {

/// What a selector may observe about the cluster at decision time.
struct ClusterView {
  /// Per-replica load (queued + in-service requests).
  std::vector<int> loads;
  /// Per-replica mean of recently observed total delays (ms); 0 when a
  /// replica has served nothing yet. The signal the paper's modified
  /// Cassandra client tracks alongside load.
  std::vector<double> recent_delay_ms;
};

/// The per-request information available to a selector. The external delay
/// is the field E2E tags onto requests at the frontend (§3.1).
struct DbRequest {
  RequestId id = 0;
  DelayMs external_delay_ms = 0.0;
  std::uint64_t range_start = 0;
  std::size_t range_count = 100;
  /// Hedged-read delay (resilience layer): when > 0 and hedging is enabled
  /// on the executor, the read is cloned to the next-best reachable replica
  /// after this much virtual time without a response. Experiments set it
  /// per sensitivity class; 0 disables hedging for the request.
  double hedge_delay_ms = 0.0;
};

/// Replica-selection policy interface.
class ReplicaSelector {
 public:
  virtual ~ReplicaSelector() = default;

  /// Returns the replica index in [0, view.loads.size()).
  virtual int SelectReplica(const DbRequest& request,
                            const ClusterView& view) = 0;

  /// Policy name for reports.
  virtual std::string Name() const = 0;
};

/// The paper's default policy: perfect load balancing (least-loaded with
/// round-robin tie-breaking).
class LoadBalancedSelector final : public ReplicaSelector {
 public:
  int SelectReplica(const DbRequest& request, const ClusterView& view) override;
  std::string Name() const override { return "default-load-balanced"; }

 private:
  std::size_t next_ = 0;
};

/// Latency-aware selection in the style of C3 (Suresh et al., NSDI'15 —
/// cited by the paper as the state of the art in tail-cutting replica
/// selection): rank replicas by a score combining observed delay and
/// outstanding load, pick the best. Minimizes delay percentiles — exactly
/// the conventional wisdom E2E argues is insufficient — so it is the
/// strongest *QoE-agnostic* baseline.
class LatencyAwareSelector final : public ReplicaSelector {
 public:
  /// `load_weight_ms` converts one outstanding request into an equivalent
  /// delay penalty (C3's cubic replica scoring simplified to linear).
  explicit LatencyAwareSelector(double load_weight_ms = 40.0)
      : load_weight_ms_(load_weight_ms) {}

  int SelectReplica(const DbRequest& request, const ClusterView& view) override;
  std::string Name() const override { return "latency-aware-c3"; }

 private:
  double load_weight_ms_;
  std::size_t next_ = 0;
};

/// Uniform random selection (ablation baseline).
class RandomSelector final : public ReplicaSelector {
 public:
  explicit RandomSelector(Rng rng) : rng_(rng) {}
  int SelectReplica(const DbRequest& request, const ClusterView& view) override;
  std::string Name() const override { return "random"; }

 private:
  Rng rng_;
};

/// Probability-table selector: maps a request's external-delay bucket to a
/// per-replica probability vector. This is how E2E's cached decision lookup
/// table (§5) drives Cassandra: the E2E controller refreshes the table; the
/// client only does an O(log k) lookup plus a categorical draw.
class TableSelector final : public ReplicaSelector {
 public:
  /// One row: requests with external delay in [lo, hi) use `probabilities`.
  struct Entry {
    DelayMs lo = 0.0;
    DelayMs hi = 0.0;
    std::vector<double> probabilities;  // One weight per replica.
  };

  TableSelector(std::string name, Rng rng) : name_(std::move(name)), rng_(rng) {}

  /// Atomically replaces the table. Entries must be sorted by `lo`.
  void SetTable(std::vector<Entry> entries);

  /// True when a table has been installed.
  bool HasTable() const { return !entries_.empty(); }

  int SelectReplica(const DbRequest& request, const ClusterView& view) override;
  std::string Name() const override { return name_; }

 private:
  std::string name_;
  Rng rng_;
  std::vector<Entry> entries_;
  std::size_t fallback_next_ = 0;
};

}  // namespace e2e::db
