// Replica groups and the cluster read path.
//
// Mirrors the paper's Cassandra deployment (§6, §7.1): the table is fully
// replicated to each replica group; a client-side read executor picks one
// group per request through a pluggable ReplicaSelector (the paper's
// getReadExecutor hook) and tracks per-replica load and observed delay
// (the paper's RequestHandler callback change).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "db/selector.h"
#include "db/storage.h"
#include "obs/metrics.h"
#include "obs/trace_span.h"
#include "qoe/qoe_model.h"
#include "resilience/circuit_breaker.h"
#include "resilience/cloning_model.h"
#include "resilience/config.h"
#include "resilience/retry_policy.h"
#include "sim/event_loop.h"
#include "sim/server.h"
#include "stats/bucketizer.h"
#include "util/rng.h"
#include "util/types.h"

namespace e2e::db {

/// Cluster construction parameters. The defaults approximate the paper's
/// Emulab nodes: ~40 ms base range-query service time, inflating with
/// in-service contention up to `capacity` concurrent jobs (set equal to the
/// service concurrency); offered load beyond saturation accrues queueing
/// delay.
struct ClusterParams {
  int replica_groups = 3;
  int concurrency_per_replica = 8;
  double base_service_ms = 40.0;
  double capacity = 8.0;
  double service_alpha = 1.0;
  double service_beta = 1.6;
  double jitter_sigma = 0.35;
};

/// One replica group: a full copy of the dataset behind a load-dependent
/// server.
class ReplicaGroup {
 public:
  ReplicaGroup(int index, EventLoop& loop, const ClusterParams& params,
               Rng rng);

  /// The replica's storage (loaded by Cluster::LoadDataset).
  StorageEngine& storage() { return storage_; }
  const StorageEngine& storage() const { return storage_; }

  SimServer& server() { return server_; }
  const SimServer& server() const { return server_; }

  int index() const { return index_; }

  /// Fault injection: a partitioned replica is unreachable; the read
  /// executor fails requests over to a reachable one.
  void SetPartitioned(bool partitioned) { partitioned_ = partitioned; }
  bool partitioned() const { return partitioned_; }

 private:
  int index_;
  StorageEngine storage_;
  SimServer server_;
  bool partitioned_ = false;
};

/// Result of a range read.
struct ReadResult {
  std::vector<Row> rows;
  int replica = 0;
  JobTiming timing;
  /// True when the selected replica was partitioned and the request was
  /// served by `replica` as a fallback.
  bool failed_over = false;
};

/// Result of a point read.
struct PointReadResult {
  std::optional<std::string> value;
  int replica = 0;
  JobTiming timing;
};

/// Result of a replicated write, reported at quorum.
struct WriteResult {
  Key key = 0;
  int acked_replicas = 0;   ///< Replicas acked when the quorum fired.
  double start_ms = 0.0;    ///< Submission time.
  double quorum_ms = 0.0;   ///< Time the quorum-th ack arrived.

  DelayMs QuorumDelayMs() const { return quorum_ms - start_ms; }
};

/// The distributed database: N replica groups, each a full copy.
class Cluster {
 public:
  Cluster(EventLoop& loop, ClusterParams params, Rng rng);

  /// Populates every replica with `num_keys` rows of `value_bytes` payload.
  void LoadDataset(std::size_t num_keys, std::size_t value_bytes);

  /// Executes a range read on the given replica; `done` fires on the event
  /// loop with rows and timing. Throws on an invalid replica index.
  void RangeRead(Key start, std::size_t count, int replica,
                 std::function<void(ReadResult)> done);

  /// Executes a point read on the given replica.
  void Read(Key key, int replica, std::function<void(PointReadResult)> done);

  /// Replicates a write to every replica group; `done` fires when `quorum`
  /// replicas have applied it (remaining replicas still apply eventually).
  /// Throws when quorum is outside [1, NumReplicas()] or `done` is empty.
  void Write(Key key, std::string value, int quorum,
             std::function<void(WriteResult)> done);

  /// Replicates a delete (tombstone) like Write.
  void Delete(Key key, int quorum, std::function<void(WriteResult)> done);

  int NumReplicas() const { return static_cast<int>(replicas_.size()); }

  const ClusterParams& params() const { return params_; }

  /// The event loop the cluster runs on (hedge timers, retry backoff).
  EventLoop& loop() { return loop_; }

  /// Fault injection (fault::FaultInjector): extra service delay on one
  /// replica (-1 = all) and partition state. Both throw on a bad index.
  void SetReplicaExtraDelayMs(int replica, double extra_ms);
  void SetReplicaPartitioned(int replica, bool partitioned);
  bool IsPartitioned(int replica) const;

  /// Snapshot of per-replica loads (queued + in service), the signal the
  /// paper's modified client tracks.
  ClusterView View() const;

  ReplicaGroup& replica(int index) { return *replicas_.at(static_cast<std::size_t>(index)); }
  const ReplicaGroup& replica(int index) const {
    return *replicas_.at(static_cast<std::size_t>(index));
  }

  /// Attaches telemetry (docs/OBSERVABILITY.md): per-replica
  /// db.replica<r>.reads counters and db.replica<r>.service_ms histograms
  /// (range-read service time, excluding queueing). `registry` must
  /// outlive the cluster.
  void AttachMetrics(obs::MetricsRegistry& registry);

 private:
  struct ReplicaMetrics {
    obs::Counter* reads = nullptr;
    obs::Histogram* service_ms = nullptr;
  };

  EventLoop& loop_;
  ClusterParams params_;
  std::vector<std::unique_ptr<ReplicaGroup>> replicas_;
  std::vector<ReplicaMetrics> metrics_;  // Empty until AttachMetrics.
};

/// Counters the resilience layer keeps on the read path so experiments can
/// export them and assert conservation: every hedged pair yields exactly
/// one winning outcome and one discarded loser, so hedges_issued ==
/// hedges_cancelled once a run has drained.
struct ReadResilienceStats {
  std::uint64_t retries = 0;           ///< Delayed re-selections granted.
  std::uint64_t retries_exhausted = 0; ///< Denials (served original anyway).
  std::uint64_t hedges_issued = 0;     ///< Clone reads sent.
  std::uint64_t hedges_won = 0;        ///< Clones that beat the primary.
  std::uint64_t hedges_cancelled = 0;  ///< Loser responses discarded.
  /// Cloning-model windows that re-derived the hedge gates (kModelDriven
  /// only; zero in static mode — the serializer skips zeros so static runs
  /// keep their historical byte stream).
  std::uint64_t model_recomputes = 0;
};

/// Per-replica resilience state exported to the placement co-design: the
/// db testbed feeds it through src/obs gauges into the controller's
/// per-window inputs, so the policy solve can shift weight away from
/// replicas the cloning model says hedging cannot rescue
/// (docs/RESILIENCE.md). Derived from virtual-clock state only.
struct ReplicaResilienceSnapshot {
  int replica = 0;
  resilience::CircuitBreaker::State breaker_state =
      resilience::CircuitBreaker::State::kClosed;
  /// Instantaneous load (queued + in service) over the capacity knee.
  double utilization = 0.0;
  /// Cloning-model gain evaluated at this replica's utilization (0 in
  /// static mode, where no model runs).
  double predicted_gain_ms = 0.0;
  /// False when the breaker is rejecting AND the model predicts cloning
  /// buys nothing at this operating point (or the hedge budget is spent):
  /// reads routed here can neither be served directly nor rescued by a
  /// clone, so placement should shift weight away until the breaker
  /// re-admits.
  bool rescuable = true;
  /// Recent mean total delay above the replica's healthy baseline
  /// (SlownessTracker EWMA); 0 until a baseline exists. The placement
  /// penalty for un-rescuable replicas, in ms.
  double excess_delay_ms = 0.0;
  /// Whole-cluster hedge clones still issuable under the current budget.
  double hedge_budget_remaining = 0.0;
};

/// Client-side read executor: selection + load/delay tracking.
class ReadExecutor {
 public:
  /// `selector` decides the replica per request. Both references must
  /// outlive the executor.
  ReadExecutor(Cluster& cluster, std::shared_ptr<ReplicaSelector> selector);

  /// Routes one request: consults the selector with the request's external
  /// delay and the current cluster view, then issues the range read. When
  /// the chosen replica is partitioned, the request fails over to the
  /// least-loaded reachable replica (ReadResult::failed_over is set); if
  /// every replica is partitioned it is served by the original choice so no
  /// request is ever lost.
  ///
  /// With EnableResilience() active the path additionally honours circuit
  /// breakers (open replicas are excluded from routing), retries the
  /// replica selection with backoff when nothing is routable, and issues a
  /// hedged clone after DbRequest::hedge_delay_ms without a response —
  /// first response wins, the loser is discarded and counted.
  void ExecuteRangeRead(const DbRequest& request,
                        std::function<void(ReadResult)> done);

  /// Swaps the selection policy at runtime (used by failover tests).
  void SetSelector(std::shared_ptr<ReplicaSelector> selector);

  const ReplicaSelector& selector() const { return *selector_; }

  /// Requests rerouted around a partitioned replica so far.
  std::uint64_t failover_count() const { return failovers_; }

  /// Attaches telemetry: db.requests and db.failovers counters.
  void AttachMetrics(obs::MetricsRegistry& registry);

  /// Activates the resilience layer (docs/RESILIENCE.md): one circuit
  /// breaker per replica (fed by response times; slow responses count as
  /// failures), retry-with-backoff when no replica is routable, and hedged
  /// reads. `rng` seeds the retry jitter stream; `classify` maps a request
  /// to the sensitivity class charged for its retry budget (defaults to
  /// kSensitive for every request). Call before the run starts.
  void EnableResilience(
      const resilience::ResilienceConfig& config, Rng rng,
      std::function<SensitivityClass(const DbRequest&)> classify = {});

  /// Resilience telemetry: db.resilience.* counters and — when `tracer` is
  /// non-null — one resilience.db.replica<r>.open span per breaker-open
  /// episode. Call after EnableResilience; both must outlive the executor.
  void AttachResilienceMetrics(obs::MetricsRegistry& registry,
                               obs::Tracer* tracer);

  const ReadResilienceStats& resilience_stats() const { return resil_stats_; }

  /// Rolls the cloning-model window forward to `now_ms` and re-derives the
  /// hedge gates at each boundary (kModelDriven only; no-op otherwise).
  /// The read path drives this on every arrival; the db testbed also calls
  /// it at controller ticks so gates stay fresh across arrival lulls.
  void MaybeRecomputeBudgets(double now_ms);

  /// Hedge gates currently in force. In kStatic mode these are the
  /// HedgeConfig constants for the whole run; in kModelDriven mode they are
  /// re-derived each model window (resilience/cloning_model.h), with the
  /// static constants as the floor: the model opens the budget beyond them
  /// when cloning is predicted significantly profitable and otherwise leaves
  /// them in force — it never closes below the floor.
  double effective_hedge_fraction() const { return effective_hedge_fraction_; }
  double effective_target_load() const { return effective_target_load_; }

  /// The cluster-level prediction from the last completed model window
  /// (zeros until the first recompute, and always in static mode).
  const resilience::CloningPrediction& last_prediction() const {
    return last_prediction_;
  }

  /// Per-replica snapshot for the placement co-design (docs/RESILIENCE.md).
  /// Empty when resilience is disabled.
  std::vector<ReplicaResilienceSnapshot> SnapshotResilience(
      double now_ms) const;

  /// Aggregated breaker counters across replicas (zeros when disabled).
  resilience::BreakerStats TotalBreakerStats() const;

  /// The replica's breaker (resilience must be enabled; throws otherwise).
  const resilience::CircuitBreaker& breaker(int replica) const {
    return breakers_.at(static_cast<std::size_t>(replica));
  }

 private:
  /// Shared completion state of one (possibly hedged) logical read.
  struct ReadState {
    bool completed = false;
    EventId hedge_timer = 0;
    std::function<void(ReadResult)> done;
  };

  void IssueWithRetries(const DbRequest& request,
                        std::function<void(ReadResult)> done, int failures,
                        double first_start_ms);
  void IssueRead(const DbRequest& request, int replica, int selected,
                 bool is_hedge, std::shared_ptr<ReadState> state);
  /// Arms the hedge timer: after `delay_ms` without a response, clone the
  /// read to the best available replica (budget and idle-capacity gated).
  /// `delay_ms` is usually DbRequest::hedge_delay_ms; 0 for a breaker-open
  /// rescue.
  void ScheduleHedge(const DbRequest& request, int primary, int selected,
                     std::shared_ptr<ReadState> state, double delay_ms);
  /// Mutating admission check on one replica (breaker may count a
  /// rejection or admit a half-open probe).
  bool RouteAllowed(int replica, double now_ms);
  /// Least-loaded replica that is reachable and whose breaker would admit,
  /// excluding `exclude` (-1 = none); -1 when no candidate exists.
  int BestAvailable(const ClusterView& view, double now_ms, int exclude) const;
  void RecordBreakerOutcome(int replica, const JobTiming& timing);
  /// Sum of every replica server's busy-milliseconds integral at `now_ms`
  /// (SimServer::BusyServerMs).
  double ClusterBusyServerMs(double now_ms) const;

  Cluster& cluster_;
  std::shared_ptr<ReplicaSelector> selector_;
  std::uint64_t failovers_ = 0;
  obs::Counter* metric_requests_ = nullptr;
  obs::Counter* metric_failovers_ = nullptr;
  // Resilience layer (inactive until EnableResilience).
  bool resilience_enabled_ = false;
  resilience::ResilienceConfig resil_config_;
  std::optional<resilience::RetryPolicy> retry_;
  std::vector<resilience::CircuitBreaker> breakers_;  // One per replica.
  // Adaptive slow-read thresholds, one per replica (docs/RESILIENCE.md):
  // the sacrificial replica's deliberate slowness must not trip its breaker.
  std::vector<resilience::SlownessTracker> slowness_;
  std::function<SensitivityClass(const DbRequest&)> classify_;
  std::uint64_t primary_reads_ = 0;  // Denominator of the hedge budget.
  ReadResilienceStats resil_stats_;
  // Hedge gates in force: the static config values until (and unless) the
  // cloning model re-derives them. ScheduleHedge reads only these, so the
  // static mode runs the byte-identical comparisons it always has.
  double effective_hedge_fraction_ = 0.0;
  double effective_target_load_ = 0.0;
  // Model-driven hedging (HedgeMode::kModelDriven; docs/RESILIENCE.md).
  bool model_driven_ = false;
  std::optional<resilience::CloningModel> cloning_model_;
  std::optional<Bucketizer> service_window_;  // Current window's samples.
  // Busy-period utilization window: virtual time and cluster busy-ms
  // integral at the last successful recompute (or at EnableResilience).
  // The window's utilization is Δbusy / (Δtime × capacity × replicas) — an
  // exact time average, where the arrival-sampled mean it replaces was
  // biased high precisely when arrivals clustered on busy periods
  // (docs/RESILIENCE.md §2).
  double util_window_start_ms_ = 0.0;
  double busy_at_window_start_ms_ = 0.0;
  double next_model_recompute_ms_ = 0.0;
  resilience::CloningPrediction last_prediction_;
  obs::Counter* metric_retries_ = nullptr;
  obs::Counter* metric_retries_exhausted_ = nullptr;
  obs::Counter* metric_hedges_ = nullptr;
  obs::Counter* metric_hedge_wins_ = nullptr;
  obs::Counter* metric_hedge_cancels_ = nullptr;
  obs::Counter* metric_breaker_transitions_ = nullptr;
  // Model-driven gate telemetry (registered only in kModelDriven mode so
  // static runs' exports stay byte-identical).
  obs::Counter* metric_model_recomputes_ = nullptr;
  obs::Gauge* metric_model_fraction_ = nullptr;
  obs::Gauge* metric_model_target_load_ = nullptr;
  obs::Gauge* metric_model_gain_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  std::vector<obs::Span> breaker_spans_;  // One per replica while open.
};

}  // namespace e2e::db
