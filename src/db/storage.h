// In-memory LSM-flavoured storage engine backing each replica.
//
// The paper's Cassandra testbed serves range queries of 100 rows over a
// replicated table (§7.1). This engine reproduces the read path that
// matters for that workload: a sorted memtable, immutable sorted runs
// flushed from it, newest-version-wins reads, and k-way-merged range scans
// with tombstone handling.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace e2e::db {

using Key = std::uint64_t;

/// One key/value pair returned by a range query.
struct Row {
  Key key = 0;
  std::string value;
};

/// Sorted in-memory store with memtable + immutable runs.
class StorageEngine {
 public:
  /// `memtable_limit` entries trigger an automatic flush; more than
  /// `max_runs` runs trigger an automatic full compaction.
  explicit StorageEngine(std::size_t memtable_limit = 4096,
                         std::size_t max_runs = 8);

  /// Inserts or overwrites a key.
  void Put(Key key, std::string value);

  /// Deletes a key (tombstone; reclaimed on compaction).
  void Delete(Key key);

  /// Point lookup; nullopt when absent or deleted.
  std::optional<std::string> Get(Key key) const;

  /// Returns up to `count` live rows with key >= start, ascending,
  /// newest version of each key.
  std::vector<Row> RangeQuery(Key start, std::size_t count) const;

  /// Forces the memtable into a new immutable run.
  void Flush();

  /// Merges all runs (and the memtable) into a single run, dropping
  /// tombstones and stale versions.
  void Compact();

  /// Number of live keys (linear scan of versions; intended for tests).
  std::size_t LiveKeyCount() const;

  /// Current number of immutable runs.
  std::size_t RunCount() const { return runs_.size(); }

  /// Entries currently in the memtable.
  std::size_t MemtableSize() const { return memtable_.size(); }

 private:
  // A value of nullopt is a tombstone.
  using Versioned = std::optional<std::string>;
  using Run = std::vector<std::pair<Key, Versioned>>;

  // Looks `key` up across memtable and runs, newest first.
  const Versioned* FindNewest(Key key) const;

  std::size_t memtable_limit_;
  std::size_t max_runs_;
  std::map<Key, Versioned> memtable_;
  std::vector<Run> runs_;  // runs_[0] is oldest.
};

}  // namespace e2e::db
