// Adversarial fault-plan search (docs/FAULTS.md, docs/RESILIENCE.md).
//
// The fault-plan grammar (fault/plan.h) spans a large space of failure
// schedules: crash/drop/delay/partition/overload clauses, windows, replica
// targets, and correlated `then`/`survivors` chains. Hand-written scenarios
// (Fig. 18) only probe the corners a human thought of; this module searches
// the grammar for the schedule that *maximizes* QoE regression under a
// caller-supplied evaluator, so the resilience layer is regression-tested
// against the worst plan the search can find, not the friendliest.
//
// The search is a seeded random-restart hill climb: a warmup phase samples
// fresh plans from the grammar, then mutation steps perturb the incumbent
// (shift a window, restep a magnitude, retarget a replica, add or drop a
// chain). Times snap to a coarse grid and magnitudes step through small
// discrete sets, which keeps the space enumerable-ish and the found plans
// human-readable. Everything draws from one Rng, so a (config, evaluator)
// pair reproduces the same search trajectory bit-for-bit — the committed
// worst-plan fixture (testbed/worst_plan_fixture.h) is re-derivable by
// rerun.
//
// The evaluator is a black box (typically "run the db testbed under this
// plan, return baseline QoE minus faulted QoE"); this library deliberately
// does not link the testbed, so the dependency arrow stays
// testbed -> fault. tools/adversary wires the two together.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fault/plan.h"
#include "util/rng.h"

namespace e2e::fault {

/// Search-space and budget knobs.
struct AdversaryConfig {
  std::uint64_t seed = 1;

  /// Total plan evaluations (the expensive part: one testbed run each).
  int iterations = 32;

  /// Fresh grammar samples before mutation of the incumbent takes over.
  /// Also the restart source: a mutation that fails to improve several
  /// times in a row falls back to sampling.
  int warmup = 8;

  /// Mutations allowed without improvement before resampling fresh.
  int patience = 6;

  /// Plans place fault windows inside [0, horizon_ms].
  double horizon_ms = 60000.0;

  /// Window starts/lengths snap to this grid.
  double time_grid_ms = 2500.0;

  /// Replica targets are drawn from [0, replicas).
  int replicas = 3;

  /// Maximum top-level chains per plan (a `then` child rides its parent's
  /// chain and does not count).
  int max_chains = 3;

  /// Include broker-targeting clauses (drop/delay broker, overload
  /// broker). Off by default: against the db testbed they are no-ops and
  /// only waste search budget.
  bool broker_faults = false;
};

/// One evaluated plan in the search trajectory.
struct AdversaryStep {
  int iteration = 0;
  double score = 0.0;    ///< Evaluator output (higher = worse for the SUT).
  bool improved = false; ///< True when this step became the incumbent.
  std::string plan;      ///< Canonical spec text.
};

/// Search outcome: the worst plan found and the full trajectory.
struct AdversaryResult {
  FaultPlan best_plan;
  double best_score = 0.0;
  std::vector<AdversaryStep> history;
};

/// Seeded adversarial search over the fault-plan grammar.
class Adversary {
 public:
  /// Scores a plan; higher means a worse outcome for the system under
  /// test (e.g. mean-QoE regression vs. a fault-free baseline). Must be
  /// deterministic for reproducible searches.
  using Evaluator = std::function<double(const FaultPlan&)>;

  /// Throws std::invalid_argument on nonsensical configs.
  explicit Adversary(AdversaryConfig config);

  /// Draws a fresh plan from the grammar (always Validate()-clean).
  FaultPlan SamplePlan(Rng& rng) const;

  /// Perturbs `plan` by one mutation operator (always Validate()-clean).
  FaultPlan MutatePlan(const FaultPlan& plan, Rng& rng) const;

  /// Runs the full search; `evaluate` is called at most
  /// `config.iterations` times (duplicate plans are skipped, not re-run).
  AdversaryResult Search(const Evaluator& evaluate) const;

  const AdversaryConfig& config() const { return config_; }

 private:
  /// One random top-level clause, optionally growing a `then` child;
  /// appends 1–2 specs to `out`.
  void SampleChain(Rng& rng, std::vector<FaultSpec>* out) const;

  double SnapTime(double ms) const;

  AdversaryConfig config_;
};

}  // namespace e2e::fault
