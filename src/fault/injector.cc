#include "fault/injector.h"

#include <stdexcept>
#include <string>

namespace e2e::fault {
namespace {

bool NeedsControllers(FaultKind kind) {
  return kind == FaultKind::kCrashController;
}
bool NeedsBroker(FaultKind kind) {
  return kind == FaultKind::kDropMessages ||
         kind == FaultKind::kDelayMessages ||
         kind == FaultKind::kOverloadBroker;
}
bool NeedsCluster(FaultKind kind) {
  return kind == FaultKind::kDelayReplica ||
         kind == FaultKind::kPartitionReplica ||
         kind == FaultKind::kOverloadReplica;
}
bool NeedsSkewHook(FaultKind kind) {
  return kind == FaultKind::kSkewEstimator;
}

const char* KindSlug(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrashController:
      return "crash_ctrl";
    case FaultKind::kDropMessages:
      return "drop_broker";
    case FaultKind::kDelayMessages:
      return "delay_broker";
    case FaultKind::kDelayReplica:
      return "delay_db";
    case FaultKind::kPartitionReplica:
      return "partition_db";
    case FaultKind::kSkewEstimator:
      return "skew_est";
    case FaultKind::kOverloadReplica:
      return "overload_db";
    case FaultKind::kOverloadBroker:
      return "overload_broker";
  }
  return "unknown";
}

// Whether a db clause applies to replica `r`, resolving the `survivors`
// sentinel against the parent clause's target (Validate guarantees the
// parent exists and names one replica).
bool TargetsReplica(const FaultPlan& plan, const FaultSpec& spec, int r) {
  if (spec.replica == -1) return true;
  if (spec.replica == kSurvivorsReplica) {
    return plan.faults[static_cast<std::size_t>(spec.follows)].replica != r;
  }
  return spec.replica == r;
}

}  // namespace

FaultInjector::FaultInjector(EventLoop& loop, FaultPlan plan,
                             FaultTargets targets)
    : loop_(loop), plan_(std::move(plan)), targets_(std::move(targets)) {
  plan_.Validate();
  active_.assign(plan_.faults.size(), false);
}

void FaultInjector::AttachTelemetry(obs::MetricsRegistry& registry,
                                    obs::Tracer* tracer) {
  metric_injects_ = &registry.AddCounter("fault.injects");
  metric_clears_ = &registry.AddCounter("fault.clears");
  tracer_ = tracer;
  spans_.resize(plan_.faults.size());
}

void FaultInjector::Arm() {
  if (armed_) {
    throw std::logic_error("FaultInjector::Arm: already armed");
  }
  armed_ = true;
  for (const FaultSpec& spec : plan_.faults) {
    if (NeedsControllers(spec.kind) && targets_.controllers == nullptr) {
      throw std::invalid_argument(
          "FaultInjector: plan crashes the controller but the run has none (" +
          spec.ToString() + ")");
    }
    if (NeedsBroker(spec.kind) && targets_.broker == nullptr) {
      throw std::invalid_argument(
          "FaultInjector: plan targets the broker but the run has none (" +
          spec.ToString() + ")");
    }
    if (NeedsCluster(spec.kind) && targets_.cluster == nullptr) {
      throw std::invalid_argument(
          "FaultInjector: plan targets the db but the run has none (" +
          spec.ToString() + ")");
    }
    if (NeedsSkewHook(spec.kind) && !targets_.apply_external_error) {
      throw std::invalid_argument(
          "FaultInjector: plan skews the estimator but no hook was wired (" +
          spec.ToString() + ")");
    }
    if (NeedsCluster(spec.kind) && spec.replica >= 0 &&
        spec.replica >= targets_.cluster->NumReplicas()) {
      throw std::invalid_argument("FaultInjector: replica out of range (" +
                                  spec.ToString() + ")");
    }
  }

  // Seed the broker's drop stream once, from every drop clause's seed, so
  // the same plan always drops the same messages.
  if (targets_.broker != nullptr) {
    std::uint64_t seed = 0x5eedfa017ULL;
    for (const FaultSpec& spec : plan_.faults) {
      if (spec.kind == FaultKind::kDropMessages) {
        seed = seed * 0x9e3779b97f4a7c15ULL + spec.seed + 1;
      }
    }
    targets_.broker->SetFaultSeed(seed);
  }

  for (std::size_t i = 0; i < plan_.faults.size(); ++i) {
    const FaultSpec& spec = plan_.faults[i];
    loop_.Schedule(spec.start_ms, [this, i]() { Activate(i); });
    // Crash recovery is the failover group's election, not a deactivation;
    // open-ended clauses simply stay active.
    if (spec.kind != FaultKind::kCrashController && spec.end_ms != kOpenEndMs) {
      loop_.Schedule(spec.end_ms, [this, i]() { Deactivate(i); });
    }
  }
}

void FaultInjector::Activate(std::size_t index) {
  const FaultSpec& spec = plan_.faults[index];
  active_[index] = true;
  if (metric_injects_ != nullptr) metric_injects_->Increment();
  if (tracer_ != nullptr) {
    spans_[index] = tracer_->StartSpan(std::string("fault.") +
                                       KindSlug(spec.kind) + "." +
                                       std::to_string(index));
  }
  switch (spec.kind) {
    case FaultKind::kCrashController:
      targets_.controllers->FailPrimary(loop_.Now(),
                                        spec.end_ms - spec.start_ms);
      break;
    case FaultKind::kDropMessages:
    case FaultKind::kDelayMessages:
    case FaultKind::kOverloadBroker:
      ApplyBrokerState();
      break;
    case FaultKind::kDelayReplica:
    case FaultKind::kPartitionReplica:
    case FaultKind::kOverloadReplica:
      ApplyDbState();
      break;
    case FaultKind::kSkewEstimator:
      ApplySkewState();
      break;
  }
  Record(spec, "inject");
}

void FaultInjector::Deactivate(std::size_t index) {
  const FaultSpec& spec = plan_.faults[index];
  active_[index] = false;
  if (metric_clears_ != nullptr) metric_clears_->Increment();
  if (!spans_.empty()) spans_[index].End();
  switch (spec.kind) {
    case FaultKind::kCrashController:
      break;  // Never scheduled.
    case FaultKind::kDropMessages:
    case FaultKind::kDelayMessages:
    case FaultKind::kOverloadBroker:
      ApplyBrokerState();
      break;
    case FaultKind::kDelayReplica:
    case FaultKind::kPartitionReplica:
    case FaultKind::kOverloadReplica:
      ApplyDbState();
      break;
    case FaultKind::kSkewEstimator:
      ApplySkewState();
      break;
  }
  Record(spec, "clear");
}

void FaultInjector::ApplyBrokerState() {
  // Independent drops compose as 1 - prod(1 - p_i); delays add; overload
  // factors multiply into a consume-rate slowdown.
  double keep = 1.0;
  double delay_ms = 0.0;
  double slowdown = 1.0;
  for (std::size_t i = 0; i < plan_.faults.size(); ++i) {
    if (!active_[i]) continue;
    const FaultSpec& spec = plan_.faults[i];
    if (spec.kind == FaultKind::kDropMessages) {
      keep *= 1.0 - spec.probability;
    } else if (spec.kind == FaultKind::kDelayMessages) {
      delay_ms += spec.delta_ms;
    } else if (spec.kind == FaultKind::kOverloadBroker) {
      slowdown *= spec.factor;
    }
  }
  broker::BrokerFaults faults;
  faults.drop_probability = 1.0 - keep;
  faults.extra_delay_ms = delay_ms;
  faults.consume_slowdown = slowdown;
  targets_.broker->SetFaults(faults);
}

void FaultInjector::ApplyDbState() {
  db::Cluster& cluster = *targets_.cluster;
  for (int r = 0; r < cluster.NumReplicas(); ++r) {
    double delay_ms = 0.0;
    bool partitioned = false;
    double overload = 1.0;
    for (std::size_t i = 0; i < plan_.faults.size(); ++i) {
      if (!active_[i]) continue;
      const FaultSpec& spec = plan_.faults[i];
      if (!NeedsCluster(spec.kind)) continue;
      if (!TargetsReplica(plan_, spec, r)) continue;
      if (spec.kind == FaultKind::kDelayReplica) {
        delay_ms += spec.delta_ms;
      } else if (spec.kind == FaultKind::kPartitionReplica) {
        partitioned = true;
      } else if (spec.kind == FaultKind::kOverloadReplica) {
        overload *= spec.factor;
      }
    }
    // Overload degrades the replica's service rate by `overload`; modelled
    // as extra per-job service time on top of the base service cost.
    delay_ms += (overload - 1.0) * cluster.params().base_service_ms;
    cluster.SetReplicaExtraDelayMs(r, delay_ms);
    cluster.SetReplicaPartitioned(r, partitioned);
  }
}

void FaultInjector::ApplySkewState() {
  double error = targets_.base_external_error;
  for (std::size_t i = 0; i < plan_.faults.size(); ++i) {
    if (active_[i] && plan_.faults[i].kind == FaultKind::kSkewEstimator) {
      error += plan_.faults[i].error;
    }
  }
  targets_.apply_external_error(error);
}

void FaultInjector::Record(const FaultSpec& spec, const char* transition) {
  injected_.push_back(InjectedFault{
      loop_.Now(), std::string(transition) + ": " + spec.ToString()});
}

}  // namespace e2e::fault
