#include "fault/adversary.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <stdexcept>
#include <utility>

namespace e2e::fault {
namespace {

// Discrete magnitude steps per kind. Small sets keep the search space
// tractable and make "restep magnitude" mutations meaningful moves rather
// than noise.
constexpr double kDbDelaySteps[] = {1000.0, 2500.0, 5000.0, 10000.0, 20000.0};
constexpr double kDbOverloadSteps[] = {2.0, 4.0, 8.0};
constexpr double kSkewSteps[] = {0.5, 1.0, 2.0, 4.0};
constexpr double kDropSteps[] = {0.05, 0.1, 0.25, 0.5};
constexpr double kBrokerDelaySteps[] = {100.0, 500.0, 2000.0};
constexpr double kBrokerOverloadSteps[] = {2.0, 4.0, 8.0};

template <std::size_t N>
double PickStep(Rng& rng, const double (&steps)[N]) {
  return steps[static_cast<std::size_t>(
      rng.UniformInt(0, static_cast<std::int64_t>(N) - 1))];
}

// Steps a magnitude to a random *different* entry of its set (no-op move
// when the set has one entry).
template <std::size_t N>
double RestepFrom(Rng& rng, const double (&steps)[N], double current) {
  for (int attempt = 0; attempt < 8; ++attempt) {
    const double next = PickStep(rng, steps);
    if (next != current) return next;
  }
  return current;
}

bool IsDbReplicaKind(FaultKind kind) {
  return kind == FaultKind::kDelayReplica ||
         kind == FaultKind::kPartitionReplica ||
         kind == FaultKind::kOverloadReplica;
}

// Re-anchors `follows` after chains were spliced: chains stay contiguous
// (Validate() requires a child to follow its parent immediately), so a
// child's parent is always the clause right before it.
void ReanchorFollows(std::vector<FaultSpec>* faults) {
  for (std::size_t i = 0; i < faults->size(); ++i) {
    FaultSpec& spec = (*faults)[i];
    if (spec.follows >= 0) spec.follows = static_cast<int>(i) - 1;
  }
}

// Indices of top-level clauses (chain heads).
std::vector<std::size_t> ChainHeads(const std::vector<FaultSpec>& faults) {
  std::vector<std::size_t> heads;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (faults[i].follows < 0) heads.push_back(i);
  }
  return heads;
}

}  // namespace

Adversary::Adversary(AdversaryConfig config) : config_(config) {
  if (config_.iterations < 1) {
    throw std::invalid_argument("Adversary: iterations must be >= 1");
  }
  if (config_.warmup < 1 || config_.warmup > config_.iterations) {
    throw std::invalid_argument("Adversary: warmup outside [1, iterations]");
  }
  if (config_.patience < 1) {
    throw std::invalid_argument("Adversary: patience must be >= 1");
  }
  if (!(config_.horizon_ms > 0.0) || !(config_.time_grid_ms > 0.0) ||
      config_.horizon_ms < 2.0 * config_.time_grid_ms) {
    throw std::invalid_argument(
        "Adversary: horizon must cover at least two grid cells");
  }
  if (config_.replicas < 1) {
    throw std::invalid_argument("Adversary: replicas must be >= 1");
  }
  if (config_.max_chains < 1) {
    throw std::invalid_argument("Adversary: max_chains must be >= 1");
  }
}

double Adversary::SnapTime(double ms) const {
  return std::round(ms / config_.time_grid_ms) * config_.time_grid_ms;
}

void Adversary::SampleChain(Rng& rng, std::vector<FaultSpec>* out) const {
  const auto cells =
      static_cast<std::int64_t>(config_.horizon_ms / config_.time_grid_ms);
  const std::int64_t start_cell = rng.UniformInt(0, cells - 2);
  const std::int64_t max_len = std::min<std::int64_t>(4, cells - start_cell);
  const std::int64_t len_cells = rng.UniformInt(1, max_len);

  FaultSpec spec;
  spec.start_ms = static_cast<double>(start_cell) * config_.time_grid_ms;
  spec.end_ms = spec.start_ms +
                static_cast<double>(len_cells) * config_.time_grid_ms;

  const std::int64_t kinds = config_.broker_faults ? 8 : 5;
  switch (rng.UniformInt(0, kinds - 1)) {
    case 0:
      spec.kind = FaultKind::kCrashController;
      break;
    case 1:
      spec.kind = FaultKind::kDelayReplica;
      spec.delta_ms = PickStep(rng, kDbDelaySteps);
      spec.replica = static_cast<int>(rng.UniformInt(-1, config_.replicas - 1));
      break;
    case 2:
      // Partitioning every replica trivially kills all reads — an
      // uninteresting maximum — so partitions always target one replica.
      spec.kind = FaultKind::kPartitionReplica;
      spec.replica = static_cast<int>(rng.UniformInt(0, config_.replicas - 1));
      break;
    case 3:
      spec.kind = FaultKind::kOverloadReplica;
      spec.factor = PickStep(rng, kDbOverloadSteps);
      spec.replica = static_cast<int>(rng.UniformInt(-1, config_.replicas - 1));
      break;
    case 4:
      spec.kind = FaultKind::kSkewEstimator;
      spec.error = PickStep(rng, kSkewSteps);
      break;
    case 5:
      spec.kind = FaultKind::kDropMessages;
      spec.probability = PickStep(rng, kDropSteps);
      spec.seed = static_cast<std::uint64_t>(rng.UniformInt(1, 1 << 20));
      break;
    case 6:
      spec.kind = FaultKind::kDelayMessages;
      spec.delta_ms = PickStep(rng, kBrokerDelaySteps);
      break;
    default:
      spec.kind = FaultKind::kOverloadBroker;
      spec.factor = PickStep(rng, kBrokerOverloadSteps);
      break;
  }
  out->push_back(spec);

  // Correlated aftermath: a single-replica db fault grows a `survivors`
  // overload child 1/3 of the time — the "failover dogpiles the healthy
  // replicas" scenario the grammar's `then` chains exist for.
  if (IsDbReplicaKind(spec.kind) && spec.replica >= 0 &&
      rng.UniformInt(0, 2) == 0) {
    FaultSpec child;
    child.kind = FaultKind::kOverloadReplica;
    child.factor = PickStep(rng, kDbOverloadSteps);
    child.replica = kSurvivorsReplica;
    child.follows = static_cast<int>(out->size()) - 1;
    child.start_ms = spec.end_ms;
    child.end_ms =
        child.start_ms +
        static_cast<double>(rng.UniformInt(1, 4)) * config_.time_grid_ms;
    out->push_back(child);
  }
}

FaultPlan Adversary::SamplePlan(Rng& rng) const {
  FaultPlan plan;
  const std::int64_t chains = rng.UniformInt(1, config_.max_chains);
  for (std::int64_t c = 0; c < chains; ++c) {
    SampleChain(rng, &plan.faults);
  }
  ReanchorFollows(&plan.faults);
  plan.Validate();
  return plan;
}

FaultPlan Adversary::MutatePlan(const FaultPlan& plan, Rng& rng) const {
  FaultPlan mutated = plan;
  auto& faults = mutated.faults;
  if (faults.empty()) return SamplePlan(rng);

  // Collect the operators applicable to this plan, then pick one.
  enum Op { kShiftWindow, kRestep, kRetarget, kAddChain, kRemoveChain };
  std::vector<Op> ops = {kShiftWindow, kRestep};
  bool has_target = false;
  for (const FaultSpec& spec : faults) {
    if (IsDbReplicaKind(spec.kind) && spec.replica >= 0) has_target = true;
  }
  if (has_target && config_.replicas > 1) ops.push_back(kRetarget);
  const auto heads = ChainHeads(faults);
  if (static_cast<int>(heads.size()) < config_.max_chains) {
    ops.push_back(kAddChain);
  }
  if (heads.size() > 1) ops.push_back(kRemoveChain);

  const Op op = ops[static_cast<std::size_t>(
      rng.UniformInt(0, static_cast<std::int64_t>(ops.size()) - 1))];
  const auto pick = [&rng, &faults]() {
    return static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(faults.size()) - 1));
  };

  switch (op) {
    case kShiftWindow: {
      FaultSpec& spec = faults[pick()];
      const double shift =
          rng.UniformInt(0, 1) == 0 ? -config_.time_grid_ms
                                    : config_.time_grid_ms;
      const double length =
          spec.end_ms == kOpenEndMs ? kOpenEndMs : spec.end_ms - spec.start_ms;
      spec.start_ms = std::max(0.0, SnapTime(spec.start_ms + shift));
      if (length != kOpenEndMs) spec.end_ms = spec.start_ms + length;
      break;
    }
    case kRestep: {
      FaultSpec& spec = faults[pick()];
      switch (spec.kind) {
        case FaultKind::kDelayReplica:
          spec.delta_ms = RestepFrom(rng, kDbDelaySteps, spec.delta_ms);
          break;
        case FaultKind::kOverloadReplica:
          spec.factor = RestepFrom(rng, kDbOverloadSteps, spec.factor);
          break;
        case FaultKind::kSkewEstimator:
          spec.error = RestepFrom(rng, kSkewSteps, spec.error);
          break;
        case FaultKind::kDropMessages:
          spec.probability = RestepFrom(rng, kDropSteps, spec.probability);
          break;
        case FaultKind::kDelayMessages:
          spec.delta_ms = RestepFrom(rng, kBrokerDelaySteps, spec.delta_ms);
          break;
        case FaultKind::kOverloadBroker:
          spec.factor = RestepFrom(rng, kBrokerOverloadSteps, spec.factor);
          break;
        case FaultKind::kCrashController:
        case FaultKind::kPartitionReplica: {
          // No magnitude: stretch the window by one grid cell instead.
          if (spec.end_ms != kOpenEndMs) spec.end_ms += config_.time_grid_ms;
          break;
        }
      }
      break;
    }
    case kRetarget: {
      for (int attempt = 0; attempt < 16; ++attempt) {
        FaultSpec& spec = faults[pick()];
        if (!IsDbReplicaKind(spec.kind) || spec.replica < 0) continue;
        spec.replica = static_cast<int>(
            rng.UniformInt(0, config_.replicas - 1));
        break;
      }
      break;
    }
    case kAddChain:
      SampleChain(rng, &faults);
      break;
    case kRemoveChain: {
      const auto heads2 = ChainHeads(faults);
      const std::size_t head = heads2[static_cast<std::size_t>(rng.UniformInt(
          0, static_cast<std::int64_t>(heads2.size()) - 1))];
      std::size_t end = head + 1;
      while (end < faults.size() && faults[end].follows >= 0) ++end;
      faults.erase(faults.begin() + static_cast<std::ptrdiff_t>(head),
                   faults.begin() + static_cast<std::ptrdiff_t>(end));
      break;
    }
  }

  ReanchorFollows(&faults);
  mutated.Validate();
  return mutated;
}

AdversaryResult Adversary::Search(const Evaluator& evaluate) const {
  if (!evaluate) {
    throw std::invalid_argument("Adversary::Search: null evaluator");
  }
  Rng rng(config_.seed);
  AdversaryResult result;
  result.best_score = -std::numeric_limits<double>::infinity();
  std::set<std::string> seen;
  int since_improved = 0;

  for (int i = 0; i < config_.iterations; ++i) {
    const bool have_incumbent = std::isfinite(result.best_score);
    bool fresh = !have_incumbent || i < config_.warmup ||
                 since_improved >= config_.patience;
    FaultPlan candidate;
    bool novel = false;
    for (int attempt = 0; attempt < 16 && !novel; ++attempt) {
      candidate =
          fresh ? SamplePlan(rng) : MutatePlan(result.best_plan, rng);
      novel = seen.insert(candidate.ToString()).second;
      // A saturated mutation neighborhood falls back to fresh sampling.
      if (!novel && attempt >= 3) fresh = true;
    }
    if (!novel) continue;  // Space exhausted at this budget; spend on.

    const double score = evaluate(candidate);
    AdversaryStep step;
    step.iteration = i;
    step.score = score;
    step.plan = candidate.ToString();
    step.improved = score > result.best_score;
    if (step.improved) {
      result.best_plan = std::move(candidate);
      result.best_score = score;
      since_improved = 0;
    } else {
      ++since_improved;
    }
    result.history.push_back(std::move(step));
  }
  return result;
}

}  // namespace e2e::fault
