// Deterministic fault plans (Fig. 18, Fig. 20; DESIGN.md, docs/FAULTS.md).
//
// A FaultPlan is a compiled list of faults to inject into a testbed run:
// controller crashes, broker message drops/delays, database replica
// slowdowns/partitions, and estimator skew. Plans parse from a compact text
// spec so benches and tests can describe whole failure scenarios in one
// string, e.g.:
//
//   crash ctrl t=60s for=30s; drop broker p=0.02 seed=7; delay db +15ms t=[120s,180s]
//
// Everything is driven by the virtual clock (src/sim/event_loop.h) and
// explicit seeds, so a plan's effects are bit-reproducible.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace e2e::fault {

/// The kinds of faults a plan can inject.
enum class FaultKind : std::uint8_t {
  kCrashController,   ///< Fail the primary; backup elected after the window.
  kDropMessages,      ///< Drop published broker messages with probability p.
  kDelayMessages,     ///< Add a fixed delay to every broker delivery.
  kDelayReplica,      ///< Add a fixed service delay to db replica(s).
  kPartitionReplica,  ///< Make db replica(s) unreachable (reads fail over).
  kSkewEstimator,     ///< Add relative error to external-delay estimates.
  kOverloadReplica,   ///< Degrade db replica(s) service rate by a factor.
  kOverloadBroker,    ///< Slow the broker consumers by a factor.
};

/// Sentinel for "active until the end of the run".
inline constexpr double kOpenEndMs = std::numeric_limits<double>::infinity();

/// Sentinel replica target: every replica NOT targeted by the parent clause
/// of a correlated `then` chain ("partition db r=0 ... then overload db x2
/// survivors"). Only valid on `then` children of a replica-targeted parent.
inline constexpr int kSurvivorsReplica = -2;

/// One fault clause. Which fields are meaningful depends on `kind`; Parse()
/// and Validate() enforce the combinations.
struct FaultSpec {
  FaultKind kind = FaultKind::kCrashController;
  double start_ms = 0.0;      ///< Activation time (virtual ms).
  double end_ms = kOpenEndMs; ///< Deactivation time; crash: election done.
  double probability = 0.0;   ///< kDropMessages: per-message drop chance.
  double delta_ms = 0.0;      ///< kDelay*: added delay in ms.
  double error = 0.0;         ///< kSkewEstimator: added relative error.
  double factor = 1.0;        ///< kOverload*: service slowdown factor.
  int replica = -1;           ///< db faults: -1 = all, kSurvivorsReplica =
                              ///< complement of the parent clause's target.
  std::uint64_t seed = 0;     ///< kDropMessages: seed of the drop stream.
  /// Index of the parent clause in FaultPlan::faults for `then` children
  /// (-1 = top-level clause). A child with no explicit window starts when
  /// its parent's window ends (or starts, for open-ended parents).
  int follows = -1;

  /// Canonical single-clause spec text (round-trips through Parse).
  std::string ToString() const;
};

/// An ordered list of fault clauses.
struct FaultPlan {
  std::vector<FaultSpec> faults;

  /// Parses the compact text grammar (docs/FAULTS.md):
  ///
  ///   plan    := chain (';' chain)*
  ///   chain   := clause (' then ' clause)*
  ///   clause  := 'crash ctrl' window
  ///            | 'drop broker' 'p='FLOAT ['seed='INT] [window]
  ///            | 'delay broker' '+'DUR [window]
  ///            | 'delay db' '+'DUR [db-target] [window]
  ///            | 'partition db' [db-target] [window]
  ///            | 'overload db' 'x'FLOAT [db-target] [window]
  ///            | 'overload broker' 'x'FLOAT [window]
  ///            | 'skew est' 'err='FLOAT [window]
  ///   db-target := 'r='INT | 'survivors'
  ///   window  := 't='DUR ['for='DUR]  |  't=['DUR','DUR']'
  ///   DUR     := FLOAT('ms'|'s'|'m')?        (bare numbers are ms)
  ///
  /// A `then` child with no explicit t= starts when its parent's window
  /// ends (or at the parent's start if the parent is open-ended), so
  /// correlated scenarios like "partition db r=0 t=[60s,90s] then overload
  /// db x2 survivors for=30s" read naturally. `survivors` targets every
  /// replica except the parent clause's r=N.
  ///
  /// The target may also be attached with '@' ("crash ctrl@t=60s").
  /// Throws std::invalid_argument on malformed specs.
  static FaultPlan Parse(const std::string& spec);

  /// Structural validation (ranges, windows); Parse() already calls this.
  /// Throws std::invalid_argument on violations.
  void Validate() const;

  bool empty() const { return faults.empty(); }

  /// True when any clause has the given kind.
  bool Has(FaultKind kind) const;

  /// Canonical spec text ("; "-joined clauses; round-trips through Parse).
  std::string ToString() const;
};

/// Record of one fault transition the injector applied, kept in
/// ExperimentResult so runs are self-describing.
struct InjectedFault {
  double at_ms = 0.0;
  std::string description;
};

}  // namespace e2e::fault
