// Compiles a FaultPlan into scheduled events on the virtual clock.
//
// The injector binds a plan to the live components of one experiment run
// (controller group, broker, db cluster, estimator hook) and schedules an
// activation/deactivation event per clause. Overlapping clauses compose:
// delays add, drop probabilities combine independently, skews add on top of
// the configured base error. Every transition is recorded so the
// ExperimentResult documents exactly what was injected and when.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "broker/broker.h"
#include "core/failover.h"
#include "db/cluster.h"
#include "fault/plan.h"
#include "obs/metrics.h"
#include "obs/trace_span.h"
#include "sim/event_loop.h"

namespace e2e::fault {

/// The components a plan can act on. Null targets are fine as long as the
/// plan has no clause needing them (Arm() validates).
struct FaultTargets {
  /// crash ctrl → FailPrimary with the clause's election window.
  ReplicatedControllerGroup* controllers = nullptr;
  /// drop/delay broker → MessageBroker fault state.
  broker::MessageBroker* broker = nullptr;
  /// delay/partition db → per-replica fault state.
  db::Cluster* cluster = nullptr;
  /// skew est → called with the total relative error (base + active skews)
  /// on every skew transition. Experiments wire this to the controller
  /// replicas and, in estimator mode, the frontend.
  std::function<void(double)> apply_external_error;
  /// The run's configured estimation error that skews add on top of.
  double base_external_error = 0.0;
};

/// Schedules and applies a plan's fault transitions. Must outlive the event
/// loop run it was armed on.
class FaultInjector {
 public:
  /// `loop` and every non-null target must outlive the injector.
  FaultInjector(EventLoop& loop, FaultPlan plan, FaultTargets targets);

  /// Validates the plan against the available targets and schedules all
  /// transitions. Throws std::invalid_argument when a clause needs a target
  /// that was not provided. Call exactly once, before running the loop.
  void Arm();

  /// Chronological record of the transitions applied so far.
  const std::vector<InjectedFault>& injected() const { return injected_; }

  const FaultPlan& plan() const { return plan_; }

  /// Attaches telemetry (docs/OBSERVABILITY.md): fault.injects and
  /// fault.clears counters, plus — when `tracer` is non-null — one
  /// fault.<kind>.<clause-index> span per clause covering its active
  /// window (crash and open-ended clauses stay open). Call before Arm();
  /// `registry` and `tracer` must outlive the injector.
  void AttachTelemetry(obs::MetricsRegistry& registry, obs::Tracer* tracer);

 private:
  void Activate(std::size_t index);
  void Deactivate(std::size_t index);
  void ApplyBrokerState();
  void ApplyDbState();
  void ApplySkewState();
  void Record(const FaultSpec& spec, const char* transition);

  EventLoop& loop_;
  FaultPlan plan_;
  FaultTargets targets_;
  std::vector<bool> active_;
  std::vector<InjectedFault> injected_;
  bool armed_ = false;
  // Telemetry (inactive until AttachTelemetry).
  obs::Counter* metric_injects_ = nullptr;
  obs::Counter* metric_clears_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  std::vector<obs::Span> spans_;  // One per clause while active.
};

}  // namespace e2e::fault
