#include "fault/plan.h"

#include <cctype>
#include <cmath>
#include <cstring>
#include <sstream>
#include <stdexcept>

namespace e2e::fault {
namespace {

[[noreturn]] void Fail(const std::string& clause, const std::string& why) {
  throw std::invalid_argument("FaultPlan: \"" + clause + "\": " + why);
}

// Splits on any of `seps`, dropping empty pieces.
std::vector<std::string> Split(const std::string& text, const char* seps) {
  std::vector<std::string> out;
  std::string current;
  for (char c : text) {
    if (std::strchr(seps, c) != nullptr) {
      if (!current.empty()) out.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) out.push_back(std::move(current));
  return out;
}

// Parses a duration: FLOAT optionally suffixed with ms|s|m (bare = ms).
double ParseDurationMs(const std::string& clause, const std::string& text) {
  std::size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &pos);
  } catch (const std::exception&) {
    Fail(clause, "bad duration \"" + text + "\"");
  }
  const std::string unit = text.substr(pos);
  if (unit.empty() || unit == "ms") return value;
  if (unit == "s") return value * 1000.0;
  if (unit == "m") return value * 60000.0;
  Fail(clause, "unknown duration unit \"" + unit + "\"");
}

double ParseFloat(const std::string& clause, const std::string& text) {
  std::size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &pos);
  } catch (const std::exception&) {
    Fail(clause, "bad number \"" + text + "\"");
  }
  if (pos != text.size()) Fail(clause, "bad number \"" + text + "\"");
  return value;
}

std::uint64_t ParseU64(const std::string& clause, const std::string& text) {
  std::size_t pos = 0;
  std::uint64_t value = 0;
  try {
    value = std::stoull(text, &pos);
  } catch (const std::exception&) {
    Fail(clause, "bad integer \"" + text + "\"");
  }
  if (pos != text.size()) Fail(clause, "bad integer \"" + text + "\"");
  return value;
}

// Formats a duration compactly: whole seconds as "Ns", otherwise "Nms".
std::string FormatDuration(double ms) {
  std::ostringstream out;
  if (ms >= 1000.0 && std::fmod(ms, 1000.0) == 0.0) {
    out << ms / 1000.0 << "s";
  } else {
    out << ms << "ms";
  }
  return out.str();
}

// One clause's raw key=value fields before kind-specific interpretation.
struct ClauseFields {
  bool has_t = false;
  double t_start_ms = 0.0;
  bool has_t_end = false;   // t=[a,b] form.
  double t_end_ms = 0.0;
  bool has_for = false;
  double for_ms = 0.0;
  bool has_p = false;
  double p = 0.0;
  bool has_err = false;
  double err = 0.0;
  bool has_delta = false;
  double delta_ms = 0.0;
  bool has_factor = false;
  double factor = 1.0;
  bool has_r = false;
  int r = -1;
  bool has_survivors = false;
  bool has_seed = false;
  std::uint64_t seed = 0;
};

void ParseField(const std::string& clause, const std::string& token,
                ClauseFields& fields) {
  if (token.size() > 1 && token.front() == '+') {
    if (fields.has_delta) Fail(clause, "duplicate delay delta");
    fields.has_delta = true;
    fields.delta_ms = ParseDurationMs(clause, token.substr(1));
    return;
  }
  if (token.size() > 1 && token.front() == 'x' &&
      (std::isdigit(static_cast<unsigned char>(token[1])) != 0 ||
       token[1] == '.')) {
    if (fields.has_factor) Fail(clause, "duplicate xFACTOR");
    fields.has_factor = true;
    fields.factor = ParseFloat(clause, token.substr(1));
    return;
  }
  if (token == "survivors") {
    if (fields.has_survivors) Fail(clause, "duplicate survivors");
    fields.has_survivors = true;
    return;
  }
  const std::size_t eq = token.find('=');
  if (eq == std::string::npos) {
    Fail(clause, "unexpected token \"" + token + "\"");
  }
  const std::string key = token.substr(0, eq);
  const std::string value = token.substr(eq + 1);
  if (value.empty()) Fail(clause, "empty value for \"" + key + "\"");
  if (key == "t") {
    if (fields.has_t) Fail(clause, "duplicate t=");
    fields.has_t = true;
    if (value.front() == '[') {
      if (value.back() != ']') Fail(clause, "unterminated t=[...] window");
      const auto parts = Split(value.substr(1, value.size() - 2), ",");
      if (parts.size() != 2) Fail(clause, "t=[...] needs exactly two times");
      fields.t_start_ms = ParseDurationMs(clause, parts[0]);
      fields.t_end_ms = ParseDurationMs(clause, parts[1]);
      fields.has_t_end = true;
    } else {
      fields.t_start_ms = ParseDurationMs(clause, value);
    }
  } else if (key == "for") {
    if (fields.has_for) Fail(clause, "duplicate for=");
    fields.has_for = true;
    fields.for_ms = ParseDurationMs(clause, value);
  } else if (key == "p") {
    if (fields.has_p) Fail(clause, "duplicate p=");
    fields.has_p = true;
    fields.p = ParseFloat(clause, value);
  } else if (key == "err") {
    if (fields.has_err) Fail(clause, "duplicate err=");
    fields.has_err = true;
    fields.err = ParseFloat(clause, value);
  } else if (key == "r") {
    if (fields.has_r) Fail(clause, "duplicate r=");
    fields.has_r = true;
    fields.r = static_cast<int>(ParseU64(clause, value));
  } else if (key == "seed") {
    if (fields.has_seed) Fail(clause, "duplicate seed=");
    fields.has_seed = true;
    fields.seed = ParseU64(clause, value);
  } else {
    Fail(clause, "unknown field \"" + key + "\"");
  }
}

// Applies the parsed window fields to a spec: t= start, then either for=
// (relative length) or t=[a,b] (absolute end). A `then` child without an
// explicit t= starts at `default_start_ms` (its parent's end, or the
// parent's start if the parent is open-ended).
void ApplyWindow(const std::string& clause, const ClauseFields& fields,
                 double default_start_ms, FaultSpec& spec) {
  spec.start_ms = fields.has_t ? fields.t_start_ms : default_start_ms;
  if (fields.has_t_end && fields.has_for) {
    Fail(clause, "t=[a,b] and for= are mutually exclusive");
  }
  if (fields.has_t_end) {
    spec.end_ms = fields.t_end_ms;
  } else if (fields.has_for) {
    spec.end_ms = spec.start_ms + fields.for_ms;
  } else {
    spec.end_ms = kOpenEndMs;
  }
}

FaultSpec ParseClause(const std::string& clause, double default_start_ms) {
  // "ctrl@t=60s" attaches the first field to the target with '@'.
  std::string normalized = clause;
  for (char& c : normalized) {
    if (c == '@') c = ' ';
  }

  const auto tokens = Split(normalized, " \t\n");
  if (tokens.size() < 2) Fail(clause, "expected \"<action> <target> ...\"");
  const std::string& action = tokens[0];
  const std::string& target = tokens[1];

  ClauseFields fields;
  for (std::size_t i = 2; i < tokens.size(); ++i) {
    ParseField(clause, tokens[i], fields);
  }

  FaultSpec spec;
  if (action == "crash" && target == "ctrl") {
    spec.kind = FaultKind::kCrashController;
  } else if (action == "drop" && target == "broker") {
    spec.kind = FaultKind::kDropMessages;
    if (!fields.has_p) Fail(clause, "drop broker needs p=");
    spec.probability = fields.p;
    spec.seed = fields.seed;
  } else if (action == "delay" && target == "broker") {
    spec.kind = FaultKind::kDelayMessages;
    if (!fields.has_delta) Fail(clause, "delay broker needs +DURATION");
    spec.delta_ms = fields.delta_ms;
  } else if (action == "delay" && target == "db") {
    spec.kind = FaultKind::kDelayReplica;
    if (!fields.has_delta) Fail(clause, "delay db needs +DURATION");
    spec.delta_ms = fields.delta_ms;
    if (fields.has_r) spec.replica = fields.r;
  } else if (action == "partition" && target == "db") {
    spec.kind = FaultKind::kPartitionReplica;
    if (fields.has_r) spec.replica = fields.r;
  } else if (action == "skew" && target == "est") {
    spec.kind = FaultKind::kSkewEstimator;
    if (!fields.has_err) Fail(clause, "skew est needs err=");
    spec.error = fields.err;
  } else if (action == "overload" && target == "db") {
    spec.kind = FaultKind::kOverloadReplica;
    if (!fields.has_factor) Fail(clause, "overload db needs xFACTOR");
    spec.factor = fields.factor;
    if (fields.has_r) spec.replica = fields.r;
  } else if (action == "overload" && target == "broker") {
    spec.kind = FaultKind::kOverloadBroker;
    if (!fields.has_factor) Fail(clause, "overload broker needs xFACTOR");
    spec.factor = fields.factor;
  } else {
    Fail(clause, "unknown fault \"" + action + " " + target + "\"");
  }

  const bool db_replica_kind = spec.kind == FaultKind::kDelayReplica ||
                               spec.kind == FaultKind::kPartitionReplica ||
                               spec.kind == FaultKind::kOverloadReplica;
  if (fields.has_survivors) {
    if (!db_replica_kind) Fail(clause, "survivors only applies to db faults");
    if (fields.has_r) Fail(clause, "r= and survivors are mutually exclusive");
    spec.replica = kSurvivorsReplica;
  }

  // Fields that do not belong to the chosen kind are spec errors.
  if (fields.has_p && spec.kind != FaultKind::kDropMessages) {
    Fail(clause, "p= only applies to drop broker");
  }
  if (fields.has_seed && spec.kind != FaultKind::kDropMessages) {
    Fail(clause, "seed= only applies to drop broker");
  }
  if (fields.has_err && spec.kind != FaultKind::kSkewEstimator) {
    Fail(clause, "err= only applies to skew est");
  }
  if (fields.has_delta && spec.kind != FaultKind::kDelayMessages &&
      spec.kind != FaultKind::kDelayReplica) {
    Fail(clause, "+DURATION only applies to delay faults");
  }
  if (fields.has_factor && spec.kind != FaultKind::kOverloadReplica &&
      spec.kind != FaultKind::kOverloadBroker) {
    Fail(clause, "xFACTOR only applies to overload faults");
  }
  if (fields.has_r && !db_replica_kind) {
    Fail(clause, "r= only applies to db faults");
  }
  if (spec.kind == FaultKind::kCrashController && !fields.has_for &&
      !fields.has_t_end) {
    Fail(clause, "crash ctrl needs for= or t=[a,b] (the election window)");
  }

  ApplyWindow(clause, fields, default_start_ms, spec);
  return spec;
}

// Splits one ';'-delimited chain on the standalone word "then", preserving
// each sub-clause's text for error messages.
std::vector<std::string> SplitOnThen(const std::string& chain) {
  std::vector<std::string> clauses;
  std::string current;
  for (const std::string& token : Split(chain, " \t\n")) {
    if (token == "then") {
      clauses.push_back(current);
      current.clear();
      continue;
    }
    if (!current.empty()) current.push_back(' ');
    current += token;
  }
  clauses.push_back(current);
  return clauses;
}

}  // namespace

std::string FaultSpec::ToString() const {
  std::ostringstream out;
  switch (kind) {
    case FaultKind::kCrashController:
      out << "crash ctrl";
      break;
    case FaultKind::kDropMessages:
      out << "drop broker p=" << probability;
      if (seed != 0) out << " seed=" << seed;
      break;
    case FaultKind::kDelayMessages:
      out << "delay broker +" << FormatDuration(delta_ms);
      break;
    case FaultKind::kDelayReplica:
      out << "delay db +" << FormatDuration(delta_ms);
      if (replica >= 0) out << " r=" << replica;
      if (replica == kSurvivorsReplica) out << " survivors";
      break;
    case FaultKind::kPartitionReplica:
      out << "partition db";
      if (replica >= 0) out << " r=" << replica;
      if (replica == kSurvivorsReplica) out << " survivors";
      break;
    case FaultKind::kSkewEstimator:
      out << "skew est err=" << error;
      break;
    case FaultKind::kOverloadReplica:
      out << "overload db x" << factor;
      if (replica >= 0) out << " r=" << replica;
      if (replica == kSurvivorsReplica) out << " survivors";
      break;
    case FaultKind::kOverloadBroker:
      out << "overload broker x" << factor;
      break;
  }
  if (end_ms == kOpenEndMs) {
    // `then` children always render their resolved start so the canonical
    // text round-trips even when the start was inherited from the parent.
    if (start_ms != 0.0 || follows >= 0) {
      out << " t=" << FormatDuration(start_ms);
    }
  } else {
    out << " t=[" << FormatDuration(start_ms) << ","
        << FormatDuration(end_ms) << "]";
  }
  return out.str();
}

FaultPlan FaultPlan::Parse(const std::string& spec) {
  FaultPlan plan;
  for (const std::string& chain : Split(spec, ";")) {
    // Skip chains that are pure whitespace (trailing ';' is fine).
    if (chain.find_first_not_of(" \t\n") == std::string::npos) continue;
    int parent = -1;
    for (const std::string& clause : SplitOnThen(chain)) {
      double default_start_ms = 0.0;
      if (parent >= 0) {
        const FaultSpec& prior = plan.faults[static_cast<std::size_t>(parent)];
        default_start_ms =
            prior.end_ms == kOpenEndMs ? prior.start_ms : prior.end_ms;
      }
      FaultSpec spec_out = ParseClause(clause, default_start_ms);
      spec_out.follows = parent;
      plan.faults.push_back(spec_out);
      parent = static_cast<int>(plan.faults.size()) - 1;
    }
  }
  plan.Validate();
  return plan;
}

void FaultPlan::Validate() const {
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const FaultSpec& spec = faults[i];
    const std::string text = spec.ToString();
    if (!(spec.start_ms >= 0.0)) Fail(text, "negative start time");
    if (!(spec.end_ms > spec.start_ms)) {
      Fail(text, "window must end after it starts");
    }
    if (spec.kind == FaultKind::kCrashController &&
        spec.end_ms == kOpenEndMs) {
      Fail(text, "crash ctrl needs a finite election window");
    }
    if (spec.kind == FaultKind::kDropMessages &&
        (spec.probability < 0.0 || spec.probability > 1.0)) {
      Fail(text, "p must be in [0, 1]");
    }
    if (spec.delta_ms < 0.0) Fail(text, "negative delay");
    if (spec.error < 0.0) Fail(text, "negative error");
    if ((spec.kind == FaultKind::kOverloadReplica ||
         spec.kind == FaultKind::kOverloadBroker) &&
        !(spec.factor >= 1.0)) {
      Fail(text, "overload factor must be >= 1");
    }
    if ((spec.kind == FaultKind::kDelayReplica ||
         spec.kind == FaultKind::kPartitionReplica ||
         spec.kind == FaultKind::kOverloadReplica) &&
        spec.replica < kSurvivorsReplica) {
      Fail(text, "bad replica index");
    }
    // `then` children must immediately follow their parent; this keeps
    // chains contiguous so ToString() can re-join them losslessly.
    if (spec.follows != -1 && spec.follows != static_cast<int>(i) - 1) {
      Fail(text, "follows must reference the immediately preceding clause");
    }
    if (spec.replica == kSurvivorsReplica) {
      if (spec.follows < 0) {
        Fail(text, "survivors needs a `then` parent clause");
      }
      const FaultSpec& parent = faults[static_cast<std::size_t>(spec.follows)];
      const bool parent_targets_replica =
          (parent.kind == FaultKind::kDelayReplica ||
           parent.kind == FaultKind::kPartitionReplica ||
           parent.kind == FaultKind::kOverloadReplica) &&
          parent.replica >= 0;
      if (!parent_targets_replica) {
        Fail(text,
             "survivors needs a parent clause targeting one db replica "
             "(r=N), so the survivor set is well defined");
      }
    }
  }
}

bool FaultPlan::Has(FaultKind kind) const {
  for (const FaultSpec& spec : faults) {
    if (spec.kind == kind) return true;
  }
  return false;
}

std::string FaultPlan::ToString() const {
  std::string out;
  for (const FaultSpec& spec : faults) {
    if (spec.follows >= 0) {
      out += " then ";
    } else if (!out.empty()) {
      out += "; ";
    }
    out += spec.ToString();
  }
  return out;
}

}  // namespace e2e::fault
