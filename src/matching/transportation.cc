#include "matching/transportation.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <stdexcept>

namespace e2e {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Target number of replay checkpoints recorded across a cold solve. More
// checkpoints shorten replays but cost O(state) memory each.
constexpr std::size_t kTargetCheckpoints = 8;

// How a column was reached during one row's Dijkstra.
struct Arrival {
  std::size_t prev_col = 0;   // Meaningful when !entry.
  std::size_t moved_row = 0;  // Row that moves prev_col → this col.
  bool entry = true;          // Reached directly from the new row.
};

void ValidateCapacity(std::span<const int> capacity, std::size_t rows,
                      std::size_t cols) {
  if (capacity.size() != cols) {
    throw std::invalid_argument(
        "TransportationSolver: capacity size != columns");
  }
  std::size_t total_capacity = 0;
  for (const int c : capacity) {
    if (c < 0) {
      throw std::invalid_argument("TransportationSolver: negative capacity");
    }
    total_capacity += static_cast<std::size_t>(c);
  }
  if (total_capacity < rows) {
    throw std::invalid_argument("TransportationSolver: total capacity < rows");
  }
}

}  // namespace

TransportationSolver::TransportationSolver(WeightMatrix matrix,
                                           std::vector<int> capacity,
                                           bool maximize, bool record_replay)
    : matrix_(std::move(matrix)),
      capacity_(std::move(capacity)),
      maximize_(maximize),
      record_replay_(record_replay) {
  ValidateCapacity(capacity_, matrix_.rows(), matrix_.cols());
}

// Successive shortest augmenting paths with column potentials. The
// alternating path bucket→column→assigned-bucket→column… only ever changes
// state at columns, so Dijkstra runs over the `num_cols` column nodes; a
// transition col→col' costs the cheapest reduced reassignment of any row
// currently on col. The complementary-slackness invariant (every assigned
// row minimizes cost(r,·) − potential[·] at its column) keeps transition
// costs non-negative, so Dijkstra applies; entry labels may be negative,
// which only shifts all labels by a constant.
//
// Capacity is read at exactly one point — the termination test on a freshly
// finalized column — which is what makes the recorded fill/saturation rows
// sufficient for Resolve() to bound where a perturbed capacity vector can
// first change the control flow.
void TransportationSolver::RunRows(std::span<const double> cost,
                                   std::size_t rows, std::size_t cols,
                                   SearchState& state, std::size_t first_row,
                                   std::span<const int> capacity,
                                   TransportationSolver* record) {
  const std::size_t n = rows;
  const std::size_t num_cols = cols;
  std::vector<double>& potential = state.potential;
  std::vector<std::vector<std::size_t>>& rows_of_col = state.rows_of_col;
  std::vector<std::size_t>& column_of_row = state.column_of_row;

  std::vector<double> dist(num_cols, 0.0);
  std::vector<std::uint8_t> finalized(num_cols, 0);
  std::vector<Arrival> arrival(num_cols);
  // Scratch, reused across rows: the reduced cost of each row assigned to
  // the column being relaxed, at that column — constant across target
  // columns, so hoisted out of the per-target loop.
  std::vector<double> at_cur;

  for (std::size_t r = first_row; r < n; ++r) {
    if (record != nullptr && r % record->checkpoint_stride_ == 0) {
      record->checkpoints_.push_back(Checkpoint{r, state});
    }
    for (std::size_t c = 0; c < num_cols; ++c) {
      dist[c] = cost[c * n + r] - potential[c];
      finalized[c] = 0;
      arrival[c] = Arrival{};
    }
    std::size_t final_col = num_cols;
    while (final_col == num_cols) {
      // Min-dist unfinalized column; strict < breaks ties toward the
      // smallest index, deterministically.
      std::size_t cur = num_cols;
      for (std::size_t c = 0; c < num_cols; ++c) {
        if (finalized[c] == 0 && (cur == num_cols || dist[c] < dist[cur])) {
          cur = c;
        }
      }
      if (cur == num_cols || dist[cur] == kInf) {
        throw std::logic_error("TransportationSolver: no augmenting path");
      }
      finalized[cur] = 1;
      if (rows_of_col[cur].size() < static_cast<std::size_t>(capacity[cur])) {
        // Occupancy of `cur` grows here (the only place it ever changes —
        // augment chains shift rows through saturated columns net-zero).
        if (record != nullptr) record->fill_rows_[cur].push_back(r);
        final_col = cur;
        break;
      }
      if (record != nullptr && record->sat_select_row_[cur] == n) {
        record->sat_select_row_[cur] = r;
      }
      const std::vector<std::size_t>& assigned = rows_of_col[cur];
      if (assigned.empty()) continue;
      const std::size_t occupants = assigned.size();
      at_cur.resize(occupants);
      const double* const cur_col = cost.data() + cur * n;
      const double potential_cur = potential[cur];
      for (std::size_t i = 0; i < occupants; ++i) {
        at_cur[i] = cur_col[assigned[i]] - potential_cur;
      }
      const double dist_cur = dist[cur];
      for (std::size_t c = 0; c < num_cols; ++c) {
        if (finalized[c] != 0) continue;
        const double* const col = cost.data() + c * n;
        const double potential_c = potential[c];
        // One pass per target column with the running minimum in a
        // register. The candidate expression and the strict-< update are
        // exactly the historical relax step — the final arrival is the
        // first occupant attaining the minimum (later equal candidates
        // fail the strict <).
        double best = dist[c];
        std::size_t best_i = occupants;
        for (std::size_t i = 0; i < occupants; ++i) {
          const double cand =
              dist_cur + ((col[assigned[i]] - potential_c) - at_cur[i]);
          if (cand < best) {
            best = cand;
            best_i = i;
          }
        }
        if (best_i != occupants) {
          dist[c] = best;
          arrival[c] = Arrival{cur, assigned[best_i], false};
        }
      }
    }

    // Dual update (Jonker–Volgenant form): finalized columns absorb the
    // slack to the augmenting path's endpoint; unreached columns keep their
    // potential.
    for (std::size_t c = 0; c < num_cols; ++c) {
      if (finalized[c]) potential[c] += dist[c] - dist[final_col];
    }

    // Augment: walk the arrival chain back to the entry edge, shifting each
    // intermediate row one column forward, then place the new row.
    std::size_t cur = final_col;
    while (!arrival[cur].entry) {
      const std::size_t moved = arrival[cur].moved_row;
      const std::size_t prev = arrival[cur].prev_col;
      std::vector<std::size_t>& from = rows_of_col[prev];
      from.erase(std::find(from.begin(), from.end(), moved));
      rows_of_col[cur].push_back(moved);
      column_of_row[moved] = cur;
      cur = prev;
    }
    rows_of_col[cur].push_back(r);
    column_of_row[r] = cur;
  }
}

TransportationResult TransportationSolver::MakeResult(
    SearchState&& state) const {
  TransportationResult result;
  result.column_of_row = std::move(state.column_of_row);
  for (std::size_t r = 0; r < result.column_of_row.size(); ++r) {
    result.total += CostAt(r, result.column_of_row[r]);
  }
  if (maximize_) result.total = -result.total;
  return result;
}

const TransportationResult& TransportationSolver::Solve() {
  if (solved_) return result_;
  const std::size_t n = matrix_.rows();
  const std::size_t num_cols = matrix_.cols();
  checkpoint_stride_ = std::max<std::size_t>(1, n / kTargetCheckpoints);
  checkpoints_.clear();
  fill_rows_.assign(num_cols, {});
  sat_select_row_.assign(num_cols, n);

  // Column-major cost copy, negated for the max objective, so the relax
  // inner loops scan contiguous columns with no per-access branch.
  const std::span<const double> data = matrix_.Data();  // column-major
  cost_.resize(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    cost_[i] = maximize_ ? -data[i] : data[i];
  }

  SearchState state;
  state.potential.assign(num_cols, 0.0);
  state.rows_of_col.assign(num_cols, {});
  state.column_of_row.assign(n, 0);
  RunRows(cost_, n, num_cols, state, 0, capacity_,
          record_replay_ ? this : nullptr);
  result_ = MakeResult(std::move(state));
  solved_ = true;
  return result_;
}

TransportationResult TransportationSolver::Resolve(
    std::span<const int> new_capacity, std::size_t* rows_replayed) const {
  if (!solved_) {
    throw std::logic_error("TransportationSolver: Resolve before Solve");
  }
  if (!record_replay_) {
    throw std::logic_error(
        "TransportationSolver: Resolve without replay recording");
  }
  const std::size_t n = matrix_.rows();
  ValidateCapacity(new_capacity, n, matrix_.cols());

  // First row whose search can observe the perturbation. Capacity[c] is read
  // only when a search finalizes c: the test (occupancy < capacity[c])
  // changes outcome iff occupancy lies in [min(old,new), max(old,new)).
  // Occupancy is monotone and every value it takes is witnessed by a
  // recorded fill (growth) or saturated-selection event, so the earliest
  // such event across perturbed columns is the first possible divergence;
  // every earlier row search runs bit-identically under either vector.
  std::size_t divergence = n;
  for (std::size_t c = 0; c < new_capacity.size(); ++c) {
    if (new_capacity[c] == capacity_[c]) continue;
    if (new_capacity[c] > capacity_[c]) {
      // Old run refused to terminate at saturated c; a larger capacity
      // terminates there.
      divergence = std::min(divergence, sat_select_row_[c]);
    } else if (fill_rows_[c].size() >
               static_cast<std::size_t>(new_capacity[c])) {
      // Old run grew c past the new cap; the growth step at occupancy ==
      // new_capacity[c] would no longer terminate there.
      divergence = std::min(
          divergence,
          fill_rows_[c][static_cast<std::size_t>(new_capacity[c])]);
    }
  }
  if (divergence >= n) {
    // No row search ever observes the difference: the cold solve under
    // new_capacity is the recorded solve.
    if (rows_replayed != nullptr) *rows_replayed = 0;
    return result_;
  }

  const Checkpoint* nearest = &checkpoints_.front();
  for (const Checkpoint& ck : checkpoints_) {
    if (ck.row <= divergence) {
      nearest = &ck;
    } else {
      break;
    }
  }
  SearchState state = nearest->state;
  RunRows(cost_, n, matrix_.cols(), state, nearest->row, new_capacity,
          /*record=*/nullptr);
  if (rows_replayed != nullptr) *rows_replayed = n - nearest->row;
  return MakeResult(std::move(state));
}

TransportationResult SolveMinCostTransportation(
    const WeightMatrix& cost, std::span<const int> capacity) {
  TransportationSolver solver(
      cost, std::vector<int>(capacity.begin(), capacity.end()),
      /*maximize=*/false, /*record_replay=*/false);
  return solver.Solve();
}

TransportationResult SolveMaxWeightTransportation(
    const WeightMatrix& weight, std::span<const int> capacity) {
  TransportationSolver solver(
      weight, std::vector<int>(capacity.begin(), capacity.end()),
      /*maximize=*/true, /*record_replay=*/false);
  return solver.Solve();
}

}  // namespace e2e
