#include "matching/transportation.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace e2e {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

TransportationResult SolveMinCostTransportation(
    const WeightMatrix& cost, std::span<const int> capacity) {
  const std::size_t n = cost.rows();
  const std::size_t num_cols = cost.cols();
  if (capacity.size() != num_cols) {
    throw std::invalid_argument(
        "SolveMinCostTransportation: capacity size != columns");
  }
  std::size_t total_capacity = 0;
  for (const int c : capacity) {
    if (c < 0) {
      throw std::invalid_argument(
          "SolveMinCostTransportation: negative capacity");
    }
    total_capacity += static_cast<std::size_t>(c);
  }
  if (total_capacity < n) {
    throw std::invalid_argument(
        "SolveMinCostTransportation: total capacity < rows");
  }

  // Successive shortest augmenting paths with column potentials. The
  // alternating path bucket→column→assigned-bucket→column… only ever
  // changes state at columns, so Dijkstra runs over the `num_cols` column
  // nodes; a transition col→col' costs the cheapest reduced reassignment of
  // any row currently on col. The complementary-slackness invariant (every
  // assigned row minimizes cost(r,·) − potential[·] at its column) keeps
  // transition costs non-negative, so Dijkstra applies; entry labels may be
  // negative, which only shifts all labels by a constant.
  std::vector<double> potential(num_cols, 0.0);
  std::vector<std::vector<std::size_t>> rows_of_col(num_cols);
  std::vector<std::size_t> column_of_row(n, 0);

  struct Arrival {
    std::size_t prev_col = 0;   // Meaningful when !entry.
    std::size_t moved_row = 0;  // Row that moves prev_col → this col.
    bool entry = true;          // Reached directly from the new row.
  };
  std::vector<double> dist(num_cols, 0.0);
  std::vector<bool> finalized(num_cols, false);
  std::vector<Arrival> arrival(num_cols);

  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < num_cols; ++c) {
      dist[c] = cost.At(r, c) - potential[c];
      finalized[c] = false;
      arrival[c] = Arrival{};
    }
    std::size_t final_col = num_cols;
    while (final_col == num_cols) {
      // Min-dist unfinalized column; strict < breaks ties toward the
      // smallest index, deterministically.
      std::size_t cur = num_cols;
      for (std::size_t c = 0; c < num_cols; ++c) {
        if (!finalized[c] && (cur == num_cols || dist[c] < dist[cur])) {
          cur = c;
        }
      }
      if (cur == num_cols || dist[cur] == kInf) {
        throw std::logic_error(
            "SolveMinCostTransportation: no augmenting path");
      }
      finalized[cur] = true;
      if (rows_of_col[cur].size() <
          static_cast<std::size_t>(capacity[cur])) {
        final_col = cur;
        break;
      }
      for (std::size_t c = 0; c < num_cols; ++c) {
        if (finalized[c]) continue;
        for (const std::size_t moved : rows_of_col[cur]) {
          const double step = (cost.At(moved, c) - potential[c]) -
                              (cost.At(moved, cur) - potential[cur]);
          if (dist[cur] + step < dist[c]) {
            dist[c] = dist[cur] + step;
            arrival[c] = Arrival{cur, moved, false};
          }
        }
      }
    }

    // Dual update (Jonker–Volgenant form): finalized columns absorb the
    // slack to the augmenting path's endpoint; unreached columns keep their
    // potential.
    for (std::size_t c = 0; c < num_cols; ++c) {
      if (finalized[c]) potential[c] += dist[c] - dist[final_col];
    }

    // Augment: walk the arrival chain back to the entry edge, shifting each
    // intermediate row one column forward, then place the new row.
    std::size_t cur = final_col;
    while (!arrival[cur].entry) {
      const std::size_t moved = arrival[cur].moved_row;
      const std::size_t prev = arrival[cur].prev_col;
      std::vector<std::size_t>& from = rows_of_col[prev];
      from.erase(std::find(from.begin(), from.end(), moved));
      rows_of_col[cur].push_back(moved);
      column_of_row[moved] = cur;
      cur = prev;
    }
    rows_of_col[cur].push_back(r);
    column_of_row[r] = cur;
  }

  TransportationResult result;
  result.column_of_row = std::move(column_of_row);
  for (std::size_t r = 0; r < n; ++r) {
    result.total += cost.At(r, result.column_of_row[r]);
  }
  return result;
}

TransportationResult SolveMaxWeightTransportation(
    const WeightMatrix& weight, std::span<const int> capacity) {
  WeightMatrix negated(weight.rows(), weight.cols());
  for (std::size_t r = 0; r < weight.rows(); ++r) {
    for (std::size_t c = 0; c < weight.cols(); ++c) {
      negated.At(r, c) = -weight.At(r, c);
    }
  }
  TransportationResult result = SolveMinCostTransportation(negated, capacity);
  result.total = -result.total;
  return result;
}

}  // namespace e2e
