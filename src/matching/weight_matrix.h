// Dense weight/cost matrix for the assignment solver.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace e2e {

/// Row-major dense matrix of doubles. Rows index requests (or buckets),
/// columns index decision slots.
class WeightMatrix {
 public:
  /// Creates a rows x cols matrix filled with `fill`.
  WeightMatrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {
    if (rows == 0 || cols == 0) {
      throw std::invalid_argument("WeightMatrix: zero dimension");
    }
  }

  /// Mutable element access (bounds-checked in debug builds only via vector).
  double& At(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }

  /// Const element access.
  double At(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> data_;
};

}  // namespace e2e
