// Dense weight/cost matrix for the assignment solver.
#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

namespace e2e {

/// Dense matrix of doubles. Rows index requests (or buckets), columns index
/// decision slots. Storage is column-major (structure-of-arrays): the
/// transportation solver's Dijkstra inner loops scan a fixed column across
/// many rows (`cost(moved, c)` for every row currently assigned to a
/// column), so keeping each column contiguous turns those scans into
/// sequential loads. `At(r, c)` keeps its historical row/column semantics —
/// only the layout changed, so every fill site and every solve stays
/// byte-identical.
class WeightMatrix {
 public:
  /// Creates a rows x cols matrix filled with `fill`.
  WeightMatrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {
    if (rows == 0 || cols == 0) {
      throw std::invalid_argument("WeightMatrix: zero dimension");
    }
  }

  /// Mutable element access (bounds-checked in debug builds only via vector).
  double& At(std::size_t r, std::size_t c) { return data_[c * rows_ + r]; }

  /// Const element access.
  double At(std::size_t r, std::size_t c) const { return data_[c * rows_ + r]; }

  /// Contiguous view of column c (one double per row).
  std::span<const double> Column(std::size_t c) const {
    return std::span<const double>(data_.data() + c * rows_, rows_);
  }

  /// Flat storage view, column-major. Two matrices with equal dimensions are
  /// element-wise bitwise equal iff their Data() bytes compare equal — the
  /// warm-start gate in core/policy.cc relies on this.
  std::span<const double> Data() const {
    return std::span<const double>(data_.data(), data_.size());
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> data_;
};

}  // namespace e2e
