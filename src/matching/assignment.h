// Maximum-weight bipartite assignment (§4.3).
//
// The request-decision mapping step casts "which request gets which slot"
// as a maximum bipartite matching; we solve the equivalent linear assignment
// problem with a shortest-augmenting-path / dual-potential algorithm in the
// style of Jonker & Volgenant (O(n^3) worst case, fast in practice on the
// dense matrices the controller produces).
#pragma once

#include <cstddef>
#include <vector>

#include "matching/weight_matrix.h"

namespace e2e {

/// Result of an assignment solve over an n x m matrix with n <= m: every
/// row is assigned a distinct column.
struct AssignmentResult {
  /// column_of_row[r] = column assigned to row r.
  std::vector<std::size_t> column_of_row;
  /// Sum of the selected entries (weight for max solvers, cost for min).
  double total = 0.0;
};

/// Solves the minimum-cost assignment for `cost` (rows <= cols required;
/// rectangular instances are handled by implicit padding). Optimal.
AssignmentResult SolveMinCostAssignment(const WeightMatrix& cost);

/// Solves the maximum-weight assignment (negates and delegates). Optimal.
AssignmentResult SolveMaxWeightAssignment(const WeightMatrix& weight);

/// Greedy max-weight heuristic (repeatedly picks the globally heaviest
/// remaining edge). Used as a baseline and as a lower-bound check in tests.
AssignmentResult GreedyMaxWeightAssignment(const WeightMatrix& weight);

/// Exhaustive optimal max-weight assignment; only for tests (rows <= 9).
AssignmentResult BruteForceMaxWeightAssignment(const WeightMatrix& weight);

}  // namespace e2e
