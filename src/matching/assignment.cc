#include "matching/assignment.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace e2e {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Cost lookup with implicit zero-cost padding columns for rectangular
// instances solved as square (size = max(rows, cols)).
class PaddedCost {
 public:
  explicit PaddedCost(const WeightMatrix& cost)
      : cost_(cost), size_(std::max(cost.rows(), cost.cols())) {}

  double At(std::size_t r, std::size_t c) const {
    if (r < cost_.rows() && c < cost_.cols()) return cost_.At(r, c);
    return 0.0;  // Padding rows/columns cost nothing.
  }

  std::size_t size() const { return size_; }

 private:
  const WeightMatrix& cost_;
  std::size_t size_;
};

}  // namespace

AssignmentResult SolveMinCostAssignment(const WeightMatrix& cost) {
  if (cost.rows() > cost.cols()) {
    throw std::invalid_argument(
        "SolveMinCostAssignment: more rows than columns");
  }
  const PaddedCost padded(cost);
  const std::size_t n = padded.size();

  // Dual potentials and matching state, 1-indexed with a virtual 0 slot.
  std::vector<double> row_potential(n + 1, 0.0);
  std::vector<double> col_potential(n + 1, 0.0);
  std::vector<std::size_t> row_of_col(n + 1, 0);  // 0 = unmatched.
  std::vector<std::size_t> path_col(n + 1, 0);

  for (std::size_t row = 1; row <= n; ++row) {
    // Grow an alternating tree from `row` until a free column is found,
    // maintaining reduced-cost minima per column (Dijkstra with potentials).
    row_of_col[0] = row;
    std::size_t cur_col = 0;
    std::vector<double> min_reduced(n + 1, kInf);
    std::vector<bool> visited(n + 1, false);
    do {
      visited[cur_col] = true;
      const std::size_t cur_row = row_of_col[cur_col];
      double delta = kInf;
      std::size_t next_col = 0;
      for (std::size_t col = 1; col <= n; ++col) {
        if (visited[col]) continue;
        const double reduced = padded.At(cur_row - 1, col - 1) -
                               row_potential[cur_row] - col_potential[col];
        if (reduced < min_reduced[col]) {
          min_reduced[col] = reduced;
          path_col[col] = cur_col;
        }
        if (min_reduced[col] < delta) {
          delta = min_reduced[col];
          next_col = col;
        }
      }
      for (std::size_t col = 0; col <= n; ++col) {
        if (visited[col]) {
          row_potential[row_of_col[col]] += delta;
          col_potential[col] -= delta;
        } else {
          min_reduced[col] -= delta;
        }
      }
      cur_col = next_col;
    } while (row_of_col[cur_col] != 0);

    // Augment along the found path.
    while (cur_col != 0) {
      const std::size_t prev_col = path_col[cur_col];
      row_of_col[cur_col] = row_of_col[prev_col];
      cur_col = prev_col;
    }
  }

  AssignmentResult result;
  result.column_of_row.assign(cost.rows(), 0);
  for (std::size_t col = 1; col <= n; ++col) {
    const std::size_t row = row_of_col[col];
    if (row >= 1 && row <= cost.rows() && col - 1 < cost.cols()) {
      result.column_of_row[row - 1] = col - 1;
      result.total += cost.At(row - 1, col - 1);
    }
  }
  return result;
}

AssignmentResult SolveMaxWeightAssignment(const WeightMatrix& weight) {
  WeightMatrix negated(weight.rows(), weight.cols());
  for (std::size_t r = 0; r < weight.rows(); ++r) {
    for (std::size_t c = 0; c < weight.cols(); ++c) {
      negated.At(r, c) = -weight.At(r, c);
    }
  }
  AssignmentResult result = SolveMinCostAssignment(negated);
  result.total = -result.total;
  return result;
}

AssignmentResult GreedyMaxWeightAssignment(const WeightMatrix& weight) {
  if (weight.rows() > weight.cols()) {
    throw std::invalid_argument(
        "GreedyMaxWeightAssignment: more rows than columns");
  }
  struct Edge {
    double w;
    std::size_t r;
    std::size_t c;
  };
  std::vector<Edge> edges;
  edges.reserve(weight.rows() * weight.cols());
  for (std::size_t r = 0; r < weight.rows(); ++r) {
    for (std::size_t c = 0; c < weight.cols(); ++c) {
      edges.push_back({weight.At(r, c), r, c});
    }
  }
  std::stable_sort(edges.begin(), edges.end(),
            [](const Edge& a, const Edge& b) { return a.w > b.w; });
  std::vector<bool> row_used(weight.rows(), false);
  std::vector<bool> col_used(weight.cols(), false);
  AssignmentResult result;
  result.column_of_row.assign(weight.rows(), 0);
  std::size_t assigned = 0;
  for (const Edge& e : edges) {
    if (row_used[e.r] || col_used[e.c]) continue;
    row_used[e.r] = true;
    col_used[e.c] = true;
    result.column_of_row[e.r] = e.c;
    result.total += e.w;
    if (++assigned == weight.rows()) break;
  }
  return result;
}

AssignmentResult BruteForceMaxWeightAssignment(const WeightMatrix& weight) {
  if (weight.rows() > 9) {
    throw std::invalid_argument("BruteForceMaxWeightAssignment: too large");
  }
  if (weight.rows() > weight.cols()) {
    throw std::invalid_argument(
        "BruteForceMaxWeightAssignment: more rows than columns");
  }
  std::vector<std::size_t> cols(weight.cols());
  std::iota(cols.begin(), cols.end(), std::size_t{0});
  AssignmentResult best;
  best.total = -kInf;
  do {
    double total = 0.0;
    for (std::size_t r = 0; r < weight.rows(); ++r) {
      total += weight.At(r, cols[r]);
    }
    if (total > best.total) {
      best.total = total;
      best.column_of_row.assign(cols.begin(),
                                cols.begin() +
                                    static_cast<std::ptrdiff_t>(weight.rows()));
    }
  } while (std::next_permutation(cols.begin(), cols.end()));
  return best;
}

}  // namespace e2e
