// Capacitated transportation solve for the request→decision mapping (§4.3).
//
// The mapping subproblem assigns n external-delay buckets to decision
// "slots", where all `units[d]` slots of decision d share one byte-identical
// weight column: the edge weight depends only on (bucket, decision). Solving
// it as an n×n assignment (matching/assignment.h) wastes an O(n³) Hungarian
// run on duplicated columns. This solver works on the collapsed n×D problem
// directly — n unit-supply sources, D sinks with capacity `units[d]` — via
// successive shortest augmenting paths with dual potentials, where each
// Dijkstra runs over the D decision nodes only (paths alternate
// bucket→decision→assigned-bucket→decision…, and the per-decision assignment
// lists collapse the intermediate bucket hops). Complexity is
// O(n²·D + n·D²) against Hungarian's O(n³) on the expanded matrix, an
// ~n/D speedup at the controller's operating point (n=256, D=8 → ~32×).
//
// Determinism: every loop scans in ascending index order and every
// comparison that picks a column/row is strict, so ties break toward the
// smallest index. Two runs on the same input produce identical assignments,
// and tests/matching_test.cc checks the objective is always exactly the
// optimum the expanded Hungarian solve finds.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "matching/weight_matrix.h"

namespace e2e {

/// Result of a transportation solve over an n×D matrix with per-column
/// capacities: every row is assigned one column; column c is used by at
/// most capacity[c] rows.
struct TransportationResult {
  /// column_of_row[r] = column (decision) assigned to row r.
  std::vector<std::size_t> column_of_row;
  /// Sum of the selected entries (cost for the min solver, weight for max).
  double total = 0.0;
};

/// Solves the minimum-cost transportation problem for `cost` (rows are
/// unit-supply sources, columns are sinks with the given capacities).
/// Requires capacity.size() == cost.cols(), all capacities >= 0, and
/// sum(capacity) >= cost.rows(); surplus capacity simply goes unused, which
/// is the collapsed form of the padded rectangular assignment. Optimal.
TransportationResult SolveMinCostTransportation(
    const WeightMatrix& cost, std::span<const int> capacity);

/// Solves the maximum-weight transportation problem (negates and
/// delegates). Optimal.
TransportationResult SolveMaxWeightTransportation(
    const WeightMatrix& weight, std::span<const int> capacity);

}  // namespace e2e
