// Capacitated transportation solve for the request→decision mapping (§4.3).
//
// The mapping subproblem assigns n external-delay buckets to decision
// "slots", where all `units[d]` slots of decision d share one byte-identical
// weight column: the edge weight depends only on (bucket, decision). Solving
// it as an n×n assignment (matching/assignment.h) wastes an O(n³) Hungarian
// run on duplicated columns. This solver works on the collapsed n×D problem
// directly — n unit-supply sources, D sinks with capacity `units[d]` — via
// successive shortest augmenting paths with dual potentials, where each
// Dijkstra runs over the D decision nodes only (paths alternate
// bucket→decision→assigned-bucket→decision…, and the per-decision assignment
// lists collapse the intermediate bucket hops). Complexity is
// O(n²·D + n·D²) against Hungarian's O(n³) on the expanded matrix, an
// ~n/D speedup at the controller's operating point (n=256, D=8 → ~32×).
//
// Determinism: every loop scans in ascending index order and every
// comparison that picks a column/row is strict, so ties break toward the
// smallest index. Two runs on the same input produce identical assignments,
// and tests/matching_test.cc checks the objective is always exactly the
// optimum the expanded Hungarian solve finds.
//
// Incremental re-solves: the hill climb in core/policy.cc evaluates
// neighboring allocations that differ from a solved base by shifting a few
// capacity units while the cost matrix stays bitwise identical.
// TransportationSolver records, during the cold solve, (a) periodic
// checkpoints of the full solver state and (b) for every column the rows at
// which its occupancy grew and the first row that finalized it while
// saturated. Capacities are read at exactly one point of the algorithm — the
// "did the search terminate here" test — so the first row whose search can
// behave differently under a perturbed capacity vector is computable from
// those event rows, and Resolve() replays the recorded algorithm from the
// last checkpoint at or before it. The replay runs the identical code over
// the identical matrix, so the result is byte-for-byte what a cold solve
// under the new capacities would produce (tests/matching_test.cc pins this
// property over randomized perturbations; docs/PERFORMANCE.md has the
// argument).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "matching/weight_matrix.h"

namespace e2e {

/// Result of a transportation solve over an n×D matrix with per-column
/// capacities: every row is assigned one column; column c is used by at
/// most capacity[c] rows.
struct TransportationResult {
  /// column_of_row[r] = column (decision) assigned to row r.
  std::vector<std::size_t> column_of_row;
  /// Sum of the selected entries (cost for the min solver, weight for max).
  double total = 0.0;
};

/// Stateful transportation solver: owns the matrix, solves once cold, and
/// then answers capacity-perturbed re-solves by replaying only the suffix of
/// rows whose searches can observe the perturbation. `maximize` selects the
/// max-weight objective; internally costs are the negated weights, applied
/// per element access (IEEE negation is exact and addition is
/// sign-symmetric, so this is bitwise identical to solving an explicitly
/// negated copy, minus the copy).
///
/// Thread safety: Solve() mutates; Resolve() is const and touches only the
/// recorded state plus call-local scratch, so any number of threads may call
/// Resolve() concurrently after the one Solve().
class TransportationSolver {
 public:
  /// Validates like the free functions below: capacity.size() must equal
  /// matrix.cols(), all capacities >= 0, sum(capacity) >= matrix.rows().
  /// `record_replay` controls whether Solve() records the checkpoint/event
  /// state Resolve() replays from; pass false for throwaway solves to skip
  /// the recording cost (Resolve() then throws).
  TransportationSolver(WeightMatrix matrix, std::vector<int> capacity,
                       bool maximize, bool record_replay = true);

  /// Runs the cold solve (recording replay state) and returns the result.
  /// Idempotent: later calls return the cached result.
  const TransportationResult& Solve();

  /// Incremental re-solve under a new capacity vector (same matrix). The
  /// result is byte-identical — assignment, tie-breaking, and total — to a
  /// cold solve over (matrix, new_capacity). Requires Solve() to have run;
  /// validates new_capacity like the constructor. `rows_replayed`, when
  /// non-null, receives the number of row searches actually re-run (0 when
  /// the perturbation provably cannot change the solve).
  TransportationResult Resolve(std::span<const int> new_capacity,
                               std::size_t* rows_replayed = nullptr) const;

  bool solved() const { return solved_; }
  const WeightMatrix& matrix() const { return matrix_; }
  std::span<const int> capacity() const { return capacity_; }

 private:
  // Full solver state between row searches: the column potentials, the
  // per-column assigned-row lists (order matters — relax loops and augment
  // erases iterate them in insertion order), and the row→column map.
  struct SearchState {
    std::vector<double> potential;
    std::vector<std::vector<std::size_t>> rows_of_col;
    std::vector<std::size_t> column_of_row;
  };
  struct Checkpoint {
    std::size_t row = 0;  // State is "all rows < row processed".
    SearchState state;
  };

  double CostAt(std::size_t r, std::size_t c) const {
    const double w = matrix_.At(r, c);
    return maximize_ ? -w : w;
  }

  // Runs row searches [first_row, n) over `state` with `capacity`, reading
  // the pre-materialized column-major cost array (already negated for the
  // max-weight objective). When `record` is non-null (cold solve only)
  // fills its checkpoints_/fill_rows_/sat_select_row_. Static so the const
  // Resolve() path can run it without touching `this`.
  static void RunRows(std::span<const double> cost, std::size_t rows,
                      std::size_t cols, SearchState& state,
                      std::size_t first_row, std::span<const int> capacity,
                      TransportationSolver* record);

  TransportationResult MakeResult(SearchState&& state) const;

  WeightMatrix matrix_;
  std::vector<int> capacity_;
  bool maximize_ = false;
  bool record_replay_ = true;
  bool solved_ = false;
  TransportationResult result_;
  // Column-major cost copy the row searches read: the matrix data as-is for
  // the min objective, element-wise negated for max. IEEE negation is exact,
  // so the stored doubles are bit-identical to negating at each access —
  // this just keeps the branch out of the Dijkstra inner loops, which scan
  // contiguous columns.
  std::vector<double> cost_;

  // Replay state recorded by the cold solve.
  std::size_t checkpoint_stride_ = 1;
  std::vector<Checkpoint> checkpoints_;
  // fill_rows_[c][k] = row whose search terminated at column c while it held
  // k rows (its occupancy grew k → k+1 there). Occupancy only ever grows, and
  // only at search terminations, so this is the full occupancy trajectory.
  std::vector<std::vector<std::size_t>> fill_rows_;
  // sat_select_row_[c] = first row whose search finalized column c while it
  // was saturated (occupancy == capacity, search continued through it);
  // rows() when that never happened.
  std::vector<std::size_t> sat_select_row_;
};

/// Solves the minimum-cost transportation problem for `cost` (rows are
/// unit-supply sources, columns are sinks with the given capacities).
/// Requires capacity.size() == cost.cols(), all capacities >= 0, and
/// sum(capacity) >= cost.rows(); surplus capacity simply goes unused, which
/// is the collapsed form of the padded rectangular assignment. Optimal.
TransportationResult SolveMinCostTransportation(
    const WeightMatrix& cost, std::span<const int> capacity);

/// Solves the maximum-weight transportation problem (negated costs, applied
/// inline). Optimal.
TransportationResult SolveMaxWeightTransportation(
    const WeightMatrix& weight, std::span<const int> capacity);

}  // namespace e2e
