// Synthetic trace generator.
//
// Reproduces the published statistical properties of the paper's dataset:
//  * Table 1 volume ratios across three page types (scaled by `scale`).
//  * Fig. 4: external delays with a 25% / 50% / 25% split across the
//    too-fast / sensitive / too-slow classes (lognormal, quartiles at the
//    2.0 s and 5.8 s region edges).
//  * Fig. 7: server-side delays statistically independent of external
//    delays (they are drawn from separate streams).
//  * Fig. 8: high server-delay variability (stdev/mean mass between ~0.2
//    and ~1.5, varying by page type).
//  * Fig. 6/15(a): a diurnal load curve where peak hours carry ~40% more
//    traffic than off-peak hours, with correspondingly inflated server
//    delays (load-dependent backend).
#pragma once

#include <array>

#include "qoe/session.h"
#include "trace/record.h"
#include "util/rng.h"

namespace e2e {

/// Per-page-type generation parameters.
struct PageTypeParams {
  /// Target web sessions at scale = 1.0 (Table 1, thousands).
  double sessions_at_full_scale = 0.0;
  /// Unique URL pool size at scale = 1.0.
  double urls_at_full_scale = 0.0;
  /// Mean extra page loads per session beyond the first (Poisson).
  double extra_loads_per_session = 0.21;
  /// Probability a session belongs to a user seen before.
  double repeat_user_fraction = 0.08;

  /// External delay lognormal (underlying normal mu/sigma, in ln-ms).
  double external_mu = 0.0;
  double external_sigma = 0.0;

  /// Server delay lognormal at nominal (off-peak) load.
  double server_mu = 0.0;
  double server_sigma = 0.0;
};

/// Whole-trace generation parameters.
struct TraceGenParams {
  std::uint64_t seed = 1;

  /// Fraction of the paper's one-day volume to generate. 0.01 gives ~16k
  /// page loads, enough for every figure while keeping benches fast.
  double scale = 0.01;

  /// How strongly server delays inflate with diurnal load (1.0 = delays
  /// scale linearly with the hourly load factor).
  double server_load_coupling = 0.9;

  std::array<PageTypeParams, kNumPageTypes> pages = DefaultPages();

  /// Defaults matching the published statistics (see file comment).
  static std::array<PageTypeParams, kNumPageTypes> DefaultPages();
};

/// Hourly load factors (24 entries, max 1.0). Peak hours (16:00, 21:00 ET)
/// are 1.0; the off-peak hours used in Fig. 6 (00:00, 03:00, 22:00) average
/// ~0.71, giving the paper's "40% more traffic at peak".
const std::array<double, 24>& DiurnalLoadFactors();

/// Generates one synthetic day of traffic.
class TraceGenerator {
 public:
  explicit TraceGenerator(TraceGenParams params);

  /// Produces the trace (sorted by arrival time). Deterministic in the seed.
  Trace Generate() const;

 private:
  TraceGenParams params_;
};

}  // namespace e2e
