#include "trace/generator.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>
#include <stdexcept>

#include "qoe/sigmoid_model.h"

namespace e2e {
namespace {

// Lognormal quartile fit: with underlying N(mu, sigma), the 25th/75th
// percentiles sit at mu -/+ 0.6745 sigma. Solving for quartiles at the
// 2,000 ms and 5,800 ms region edges gives the Fig. 4 class split.
constexpr double kExternalMu = 8.132;     // ln(3400 ms) median.
constexpr double kExternalSigma = 0.790;  // quartiles ~2.0 s / ~5.8 s.

}  // namespace

std::array<PageTypeParams, kNumPageTypes> TraceGenParams::DefaultPages() {
  std::array<PageTypeParams, kNumPageTypes> pages;
  // Table 1 volumes (thousands): sessions 564.8 / 265.7 / 512.2;
  // URLs 3.8k / 1.5k / 3.2k. Server delays are heavy-tailed lognormals
  // (median a few hundred ms, mean ~0.2x the mean external delay, matching
  // Fig. 7 medians against the Fig. 19a server/external ratio); sigmas
  // differ per page type so the Fig. 8 stdev/mean CDFs separate.
  pages[0] = {.sessions_at_full_scale = 564800,
              .urls_at_full_scale = 3800,
              .extra_loads_per_session = 0.209,
              .repeat_user_fraction = 0.077,
              .external_mu = kExternalMu,
              .external_sigma = kExternalSigma,
              .server_mu = std::log(330.0),
              .server_sigma = 1.10};
  pages[1] = {.sessions_at_full_scale = 265700,
              .urls_at_full_scale = 1500,
              .extra_loads_per_session = 0.182,
              .repeat_user_fraction = 0.006,
              .external_mu = kExternalMu + 0.04,
              .external_sigma = kExternalSigma,
              .server_mu = std::log(340.0),
              .server_sigma = 1.25};
  pages[2] = {.sessions_at_full_scale = 512200,
              .urls_at_full_scale = 3200,
              .extra_loads_per_session = 0.172,
              .repeat_user_fraction = 0.059,
              .external_mu = kExternalMu - 0.03,
              .external_sigma = kExternalSigma,
              .server_mu = std::log(320.0),
              .server_sigma = 0.95};
  return pages;
}

const std::array<double, 24>& DiurnalLoadFactors() {
  // Hour-of-day (ET) load factors; peaks at 16:00 and 21:00.
  static const std::array<double, 24> kFactors = {
      0.70,  // 00
      0.62,  // 01
      0.58,  // 02
      0.66,  // 03
      0.60,  // 04
      0.62,  // 05
      0.66,  // 06
      0.72,  // 07
      0.78,  // 08
      0.84,  // 09
      0.87,  // 10
      0.89,  // 11
      0.92,  // 12
      0.90,  // 13
      0.93,  // 14
      0.96,  // 15
      1.00,  // 16  peak
      0.95,  // 17
      0.92,  // 18
      0.93,  // 19
      0.96,  // 20
      1.00,  // 21  peak
      0.78,  // 22
      0.73,  // 23
  };
  return kFactors;
}

TraceGenerator::TraceGenerator(TraceGenParams params)
    : params_(std::move(params)) {
  if (params_.scale <= 0.0) {
    throw std::invalid_argument("TraceGenerator: scale <= 0");
  }
}

Trace TraceGenerator::Generate() const {
  Trace trace;
  Rng root(params_.seed);
  RequestId next_request = 1;
  std::uint64_t next_session = 1;
  UserId next_user = 1;

  const auto& diurnal = DiurnalLoadFactors();
  const double diurnal_total =
      std::accumulate(diurnal.begin(), diurnal.end(), 0.0);

  for (int p = 0; p < kNumPageTypes; ++p) {
    const PageTypeParams& page = params_.pages[static_cast<std::size_t>(p)];
    Rng rng = root.Fork(static_cast<std::uint64_t>(p));
    const auto sessions = static_cast<std::size_t>(
        std::llround(page.sessions_at_full_scale * params_.scale));
    const auto url_pool = std::max<std::uint32_t>(
        4, static_cast<std::uint32_t>(page.urls_at_full_scale * params_.scale));

    // Session engagement follows the page type's QoE model, so the Fig. 3a
    // pipeline (bucket sessions by PLT, average) recovers the curve.
    const auto qoe = std::make_shared<const SigmoidQoeModel>(
        SigmoidQoeModel::ForPageType(PageTypeFromIndex(p)));
    const SessionModel session_model(qoe, SessionModelParams{});

    std::vector<UserId> seen_users;
    seen_users.reserve(sessions);

    // Minute-scale burstiness: real web traffic is doubly stochastic, with
    // some minutes ~2x busier than others. Weight each minute of the day
    // by an independent lognormal factor; testbed replays then see the
    // transient queue build-ups that make load-aware allocation matter.
    std::array<std::vector<double>, 24> minute_weights;
    for (auto& weights : minute_weights) {
      weights.resize(60);
      for (double& w : weights) w = rng.LogNormal(0.0, 0.3);
    }

    for (std::size_t s = 0; s < sessions; ++s) {
      // Arrival hour drawn from the diurnal profile; minute from the
      // burst weights; uniform within the minute.
      const auto hour = rng.Categorical(
          std::span<const double>(diurnal.data(), diurnal.size()));
      const auto minute = rng.Categorical(minute_weights[hour]);
      const double arrival_base =
          (static_cast<double>(hour) * 60.0 + static_cast<double>(minute) +
           rng.Uniform(0.0, 1.0)) *
          60.0 * 1000.0;
      const double load_factor = diurnal[hour] / (diurnal_total / 24.0);

      // User identity: mostly fresh users, some repeats (Table 1 ratios).
      UserId user;
      if (!seen_users.empty() && rng.Bernoulli(page.repeat_user_fraction)) {
        user = seen_users[static_cast<std::size_t>(rng.UniformInt(
            0, static_cast<std::int64_t>(seen_users.size()) - 1))];
      } else {
        user = next_user++;
        seen_users.push_back(user);
      }
      const std::uint64_t session_id = next_session++;

      // Page loads in this session: 1 + Poisson(extra).
      int loads = 1;
      {
        const double lambda = page.extra_loads_per_session;
        double acc = std::exp(-lambda);
        double u = rng.Uniform(0.0, 1.0);
        double cdf = acc;
        int k = 0;
        while (u > cdf && k < 20) {
          ++k;
          acc *= lambda / k;
          cdf += acc;
        }
        loads += k;
      }

      // A session's loads share a base external delay (same last-mile path)
      // with per-load jitter; this is what makes external delay an inherent
      // per-user property.
      const double session_external =
          rng.LogNormal(page.external_mu, page.external_sigma);

      DelayMs first_total = 0.0;
      double session_time_on_site = 0.0;
      for (int l = 0; l < loads; ++l) {
        TraceRecord rec;
        rec.request_id = next_request++;
        rec.user_id = user;
        rec.session_id = session_id;
        rec.page_type = PageTypeFromIndex(p);
        rec.url_id = static_cast<std::uint32_t>(
            rng.UniformInt(0, static_cast<std::int64_t>(url_pool) - 1));
        rec.arrival_ms = arrival_base + static_cast<double>(l) *
                                            rng.Uniform(4000.0, 30000.0);
        rec.external_delay_ms =
            std::max(50.0, session_external * std::exp(rng.Normal(0.0, 0.12)));

        // Server delay: independent of external delay, load-coupled.
        const double load_inflation =
            1.0 + params_.server_load_coupling * (load_factor - 1.0);
        rec.server_delay_ms = std::max(
            1.0, rng.LogNormal(page.server_mu, page.server_sigma) *
                     std::max(0.2, load_inflation));

        if (l == 0) {
          first_total = rec.TotalDelayMs();
          session_time_on_site =
              session_model.SampleTimeOnSiteSec(first_total, rng);
        }
        rec.time_on_site_sec = session_time_on_site;
        trace.records.push_back(rec);
      }
    }
  }

  std::stable_sort(trace.records.begin(), trace.records.end(),
            [](const TraceRecord& a, const TraceRecord& b) {
              return a.arrival_ms < b.arrival_ms;
            });
  return trace;
}

}  // namespace e2e
