#include "trace/windows.h"

#include <cmath>
#include <stdexcept>

namespace e2e {

std::map<WindowKey, std::vector<TraceRecord>> GroupByWindow(
    std::span<const TraceRecord> records, double window_ms) {
  if (window_ms <= 0.0) {
    throw std::invalid_argument("GroupByWindow: window_ms <= 0");
  }
  std::map<WindowKey, std::vector<TraceRecord>> groups;
  for (const auto& r : records) {
    WindowKey key{.page_type = r.page_type,
                  .window_index = static_cast<std::int64_t>(
                      std::floor(r.arrival_ms / window_ms))};
    groups[key].push_back(r);
  }
  return groups;
}

void StreamByWindow(
    std::span<const TraceRecord> records, double window_ms,
    const std::function<void(const WindowKey&, const TraceRecord&)>& on_record,
    const std::function<void(std::int64_t)>& on_close) {
  if (window_ms <= 0.0) {
    throw std::invalid_argument("StreamByWindow: window_ms <= 0");
  }
  bool open = false;
  std::int64_t current = 0;
  double last_arrival = 0.0;
  for (const auto& r : records) {
    if (open && r.arrival_ms < last_arrival) {
      throw std::invalid_argument(
          "StreamByWindow: records not sorted by arrival_ms");
    }
    last_arrival = r.arrival_ms;
    const auto index =
        static_cast<std::int64_t>(std::floor(r.arrival_ms / window_ms));
    if (!open) {
      current = index;
      open = true;
    }
    // Close every elapsed index (including empty ones) in ascending order
    // before routing the record that advanced past them.
    while (current < index) {
      on_close(current);
      ++current;
    }
    on_record(WindowKey{.page_type = r.page_type, .window_index = index}, r);
  }
  if (open) on_close(current);
}

std::vector<std::vector<TraceRecord>> SampleWindowsPerTenMinutes(
    std::span<const TraceRecord> records, double begin_ms, double end_ms,
    double window_ms) {
  if (window_ms <= 0.0 || begin_ms >= end_ms) {
    throw std::invalid_argument("SampleWindowsPerTenMinutes: bad interval");
  }
  constexpr double kTenMinutesMs = 10.0 * 60.0 * 1000.0;
  std::vector<std::vector<TraceRecord>> windows;
  for (double stretch = begin_ms; stretch < end_ms; stretch += kTenMinutesMs) {
    const double stretch_end = std::min(stretch + kTenMinutesMs, end_ms);
    const double sub_begin = stretch_end - window_ms;
    std::vector<TraceRecord> window;
    for (const auto& r : records) {
      if (r.arrival_ms >= sub_begin && r.arrival_ms < stretch_end) {
        window.push_back(r);
      }
    }
    if (!window.empty()) windows.push_back(std::move(window));
  }
  return windows;
}

}  // namespace e2e
