// Trace record types: one day of synthesized web requests with client-side
// and server-side timing, standing in for the paper's production dataset
// (Table 1). See DESIGN.md §1 for the substitution rationale.
#pragma once

#include <cstdint>
#include <vector>

#include "util/types.h"

namespace e2e {

/// One page-load event. Delays follow the paper's decomposition (Fig. 2):
/// total = external + server-side; external includes WAN, last-mile, DNS,
/// and browser rendering; server-side is the backend processing time.
struct TraceRecord {
  RequestId request_id = 0;
  UserId user_id = 0;
  std::uint64_t session_id = 0;
  std::uint32_t url_id = 0;
  PageType page_type = PageType::kType1;

  /// Arrival time at the frontend, milliseconds since midnight (trace-day
  /// local time).
  double arrival_ms = 0.0;

  /// External delay (inherent to the request; the service cannot change it).
  DelayMs external_delay_ms = 0.0;

  /// Server-side delay recorded under the production default policy.
  DelayMs server_delay_ms = 0.0;

  /// Session engagement (time-on-site, seconds) observed for this user's
  /// session; the QoE ground truth for trace-driven analysis.
  double time_on_site_sec = 0.0;

  /// Total page-load time under the recorded delays.
  DelayMs TotalDelayMs() const { return external_delay_ms + server_delay_ms; }
};

/// A full synthesized trace (one day), sorted by arrival time.
struct Trace {
  std::vector<TraceRecord> records;

  /// Returns records of one page type (arrival order preserved).
  std::vector<TraceRecord> FilterByPage(PageType type) const;

  /// Returns records with arrival in [begin_ms, end_ms).
  std::vector<TraceRecord> FilterByTime(double begin_ms, double end_ms) const;
};

/// Table 1-style dataset summary.
struct TraceSummary {
  struct PerPage {
    std::size_t page_loads = 0;
    std::size_t web_sessions = 0;
    std::size_t unique_urls = 0;
    std::size_t unique_users = 0;
  };
  PerPage per_page[kNumPageTypes];
  std::size_t total_page_loads = 0;
  std::size_t total_unique_users = 0;
};

/// Computes the Table 1 summary of a trace.
TraceSummary Summarize(const Trace& trace);

}  // namespace e2e
