#include "trace/replay.h"

#include <stdexcept>

namespace e2e {

std::vector<ReplayArrival> BuildReplaySchedule(
    std::span<const TraceRecord> records, double speedup) {
  if (speedup <= 0.0) {
    throw std::invalid_argument("BuildReplaySchedule: speedup <= 0");
  }
  std::vector<ReplayArrival> schedule;
  schedule.reserve(records.size());
  if (records.empty()) return schedule;
  const double origin = records.front().arrival_ms;
  for (const auto& r : records) {
    if (r.arrival_ms < origin) {
      throw std::invalid_argument(
          "BuildReplaySchedule: records not in arrival order");
    }
    ReplayArrival a;
    a.record = r;
    a.testbed_time_ms = (r.arrival_ms - origin) / speedup;
    schedule.push_back(a);
  }
  for (std::size_t i = 1; i < schedule.size(); ++i) {
    if (schedule[i].testbed_time_ms < schedule[i - 1].testbed_time_ms) {
      throw std::invalid_argument(
          "BuildReplaySchedule: records not in arrival order");
    }
  }
  return schedule;
}

double OfferedRps(std::span<const ReplayArrival> schedule) {
  if (schedule.size() < 2) return 0.0;
  const double span_ms =
      schedule.back().testbed_time_ms - schedule.front().testbed_time_ms;
  if (span_ms <= 0.0) return 0.0;
  return static_cast<double>(schedule.size()) / (span_ms / 1000.0);
}

}  // namespace e2e
