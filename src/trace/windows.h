// Windowed grouping of trace records.
//
// The paper's counterfactual analysis (§2.3) and the controller's batched
// model updates (§6) both operate on requests grouped by page type within
// fixed time windows (10 s by default); delays are only comparable within a
// group.
#pragma once

#include <functional>
#include <map>
#include <span>
#include <utility>
#include <vector>

#include "trace/record.h"

namespace e2e {

/// Key identifying one (page type, window) group.
struct WindowKey {
  PageType page_type = PageType::kType1;
  std::int64_t window_index = 0;

  auto operator<=>(const WindowKey&) const = default;
};

/// Groups records by page type and fixed-size arrival window.
/// `window_ms` must be positive. Record order within a group follows the
/// input order.
std::map<WindowKey, std::vector<TraceRecord>> GroupByWindow(
    std::span<const TraceRecord> records, double window_ms);

/// Streaming counterpart of GroupByWindow for O(window) peak memory over an
/// arrival-sorted trace: `on_record` fires once per record with its group
/// key, in trace order; `on_close(window_index)` fires once per elapsed
/// window index in strictly ascending order, as soon as the first record of
/// a later window arrives (every group of that index — all page types — is
/// complete at that point), and once more for the final window after the
/// last record. A close for index i is emitted even when i held no records,
/// so consumers can rely on one close per index in [first, last]. Throws
/// when `window_ms <= 0` or the records are not sorted by arrival_ms.
void StreamByWindow(
    std::span<const TraceRecord> records, double window_ms,
    const std::function<void(const WindowKey&, const TraceRecord&)>& on_record,
    const std::function<void(std::int64_t)>& on_close);

/// Selects, for each 10-minute stretch inside [begin_ms, end_ms), the last
/// `window_ms` sub-window of records — the sampling scheme Fig. 6 uses
/// ("for every 10 minutes, pick the last 10-second window").
std::vector<std::vector<TraceRecord>> SampleWindowsPerTenMinutes(
    std::span<const TraceRecord> records, double begin_ms, double end_ms,
    double window_ms);

}  // namespace e2e
