// Trace replay with a speed-up ratio (§7.1): requests are fed to a testbed
// in chronological order with inter-arrival gaps divided by the ratio, which
// is how the paper loads its Cassandra/RabbitMQ deployments.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "trace/record.h"

namespace e2e {

/// One replayed arrival: the original record plus its compressed arrival
/// time on the testbed clock (starting at 0).
struct ReplayArrival {
  TraceRecord record;
  double testbed_time_ms = 0.0;
};

/// Builds the replay schedule for `records` (must be in arrival order) at
/// the given speed-up ratio. speedup >= 1 compresses time; 0 < speedup < 1
/// stretches it. Throws when speedup <= 0.
std::vector<ReplayArrival> BuildReplaySchedule(
    std::span<const TraceRecord> records, double speedup);

/// Average offered load (requests per second) of a replay schedule.
double OfferedRps(std::span<const ReplayArrival> schedule);

}  // namespace e2e
