#include "trace/io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace e2e {
namespace {

constexpr const char* kHeader =
    "request_id,user_id,session_id,url_id,page_type,arrival_ms,"
    "external_delay_ms,server_delay_ms,time_on_site_sec";

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream ss(line);
  while (std::getline(ss, field, ',')) fields.push_back(field);
  return fields;
}

}  // namespace

void WriteTraceCsv(const Trace& trace, std::ostream& out) {
  // Full round-trip precision for the double fields.
  out.precision(17);
  out << kHeader << '\n';
  for (const auto& r : trace.records) {
    out << r.request_id << ',' << r.user_id << ',' << r.session_id << ','
        << r.url_id << ',' << Index(r.page_type) << ',' << r.arrival_ms << ','
        << r.external_delay_ms << ',' << r.server_delay_ms << ','
        << r.time_on_site_sec << '\n';
  }
}

void WriteTraceCsvFile(const Trace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("WriteTraceCsvFile: cannot open " + path);
  WriteTraceCsv(trace, out);
  if (!out) throw std::runtime_error("WriteTraceCsvFile: write failed");
}

Trace ReadTraceCsv(std::istream& in) {
  Trace trace;
  std::string line;
  if (!std::getline(in, line) || line != kHeader) {
    throw std::runtime_error("ReadTraceCsv: missing or unexpected header");
  }
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto fields = SplitCsvLine(line);
    if (fields.size() != 9) {
      throw std::runtime_error("ReadTraceCsv: bad field count at line " +
                               std::to_string(line_no));
    }
    try {
      TraceRecord r;
      r.request_id = std::stoull(fields[0]);
      r.user_id = std::stoull(fields[1]);
      r.session_id = std::stoull(fields[2]);
      r.url_id = static_cast<std::uint32_t>(std::stoul(fields[3]));
      r.page_type = PageTypeFromIndex(std::stoi(fields[4]));
      r.arrival_ms = std::stod(fields[5]);
      r.external_delay_ms = std::stod(fields[6]);
      r.server_delay_ms = std::stod(fields[7]);
      r.time_on_site_sec = std::stod(fields[8]);
      trace.records.push_back(r);
    } catch (const std::exception& e) {
      throw std::runtime_error("ReadTraceCsv: parse error at line " +
                               std::to_string(line_no) + ": " + e.what());
    }
  }
  return trace;
}

Trace ReadTraceCsvFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("ReadTraceCsvFile: cannot open " + path);
  return ReadTraceCsv(in);
}

}  // namespace e2e
