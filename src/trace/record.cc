#include "trace/record.h"

#include <algorithm>
#include <set>

namespace e2e {

std::vector<TraceRecord> Trace::FilterByPage(PageType type) const {
  std::vector<TraceRecord> out;
  for (const auto& r : records) {
    if (r.page_type == type) out.push_back(r);
  }
  return out;
}

std::vector<TraceRecord> Trace::FilterByTime(double begin_ms,
                                             double end_ms) const {
  std::vector<TraceRecord> out;
  for (const auto& r : records) {
    if (r.arrival_ms >= begin_ms && r.arrival_ms < end_ms) out.push_back(r);
  }
  return out;
}

TraceSummary Summarize(const Trace& trace) {
  TraceSummary summary;
  std::set<UserId> all_users;
  std::set<UserId> users[kNumPageTypes];
  std::set<std::uint64_t> sessions[kNumPageTypes];
  std::set<std::uint32_t> urls[kNumPageTypes];
  for (const auto& r : trace.records) {
    const int p = Index(r.page_type);
    ++summary.per_page[p].page_loads;
    users[p].insert(r.user_id);
    sessions[p].insert(r.session_id);
    urls[p].insert(r.url_id);
    all_users.insert(r.user_id);
  }
  for (int p = 0; p < kNumPageTypes; ++p) {
    summary.per_page[p].web_sessions = sessions[p].size();
    summary.per_page[p].unique_urls = urls[p].size();
    summary.per_page[p].unique_users = users[p].size();
    summary.total_page_loads += summary.per_page[p].page_loads;
  }
  summary.total_unique_users = all_users.size();
  return summary;
}

}  // namespace e2e
