// CSV persistence for traces, so generated datasets can be inspected or
// re-used across runs.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/record.h"

namespace e2e {

/// Writes a trace as CSV with a header row.
void WriteTraceCsv(const Trace& trace, std::ostream& out);

/// Writes a trace to a file; throws std::runtime_error on I/O failure.
void WriteTraceCsvFile(const Trace& trace, const std::string& path);

/// Parses a trace from CSV produced by WriteTraceCsv. Throws
/// std::runtime_error on malformed input.
Trace ReadTraceCsv(std::istream& in);

/// Reads a trace from a file; throws std::runtime_error on I/O failure.
Trace ReadTraceCsvFile(const std::string& path);

}  // namespace e2e
