// Sharded full-trace controller replay (docs/SCALE.md).
//
// Replays a whole recorded day through the E2E policy at full volume by
// streaming the arrival-sorted trace once and solving each (page type ×
// analysis window) group independently: the group's external delays
// accumulate into a streaming Bucketizer as records arrive, and when the
// window closes the group's decision table is computed and applied to its
// records. Groups are partitioned across `ControllerConfig::shards` shards
// — each shard owns its open windows, bucketizers, and solved tables — and
// solved groups are re-merged in ascending (window, page type) order, so
// the output byte stream is identical at any shard count (the scale test
// tier proves shards ∈ {1, 2, 4, 7} byte-equal).
//
// Peak memory is O(window × shards), not O(day): only the currently open
// windows hold records, and with `keep_outcomes == false` per-request
// outcomes are folded into running aggregates at each merge instead of
// being retained (bench/bench_scale.cc replays the paper's full 1.6M-load
// day this way).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/server_delay_model.h"
#include "resilience/cloning_model.h"
#include "stats/summary.h"
#include "testbed/counterfactual.h"
#include "testbed/experiment_config.h"
#include "testbed/metrics.h"
#include "trace/record.h"

namespace e2e {

/// Configuration for one sharded replay. The shard count, analysis window
/// (`controller.external.window_ms`), and policy knobs come from
/// `common.controller`; `common.seed` only labels the run (the replay is
/// seed-free — every step is a pure function of the trace and config).
struct ShardedReplayConfig {
  ExperimentConfig common;

  /// Retain per-request outcomes in the result (required for
  /// ExperimentResult::Serialize() byte-identity checks). When false the
  /// outcomes are folded into the aggregate fields at each merge and
  /// dropped, bounding peak RSS for full-volume runs.
  bool keep_outcomes = true;
};

/// Replay bookkeeping, all deterministic and shard-count-invariant.
struct ShardedReplayStats {
  std::uint64_t windows_streamed = 0;  ///< Window-close events observed.
  std::uint64_t groups_merged = 0;     ///< (page, window) groups solved.
  std::uint64_t records = 0;           ///< Trace records replayed.
  int shards = 0;                      ///< Resolved shard count used.
};

/// Result of one sharded replay.
struct ShardedReplayResult {
  ExperimentResult result;
  ShardedReplayStats stats;

  /// Streaming moments of served-request QoE, maintained on the serial
  /// merge path in (window, page) order — shard-count-invariant, and
  /// available even with `keep_outcomes == false` (full-volume runs), so
  /// tail/variance objectives can be evaluated without retaining per-
  /// request outcomes.
  StreamingSummary qoe_summary;

  /// 100-bin histogram of served-request QoE normalized per page by the
  /// page model's MaxQoe() (bin = floor(100·q/MaxQoe), clamped to
  /// [0, 99]). This is the replay-level QoE CDF the objective figures
  /// plot; like qoe_summary it survives aggregate-only runs.
  std::vector<std::uint64_t> qoe_histogram = std::vector<std::uint64_t>(100);

  /// Last hedge-gate prediction the model-driven metering derived on the
  /// serial merge path (all zeros unless `resilience.hedge` is enabled in
  /// HedgeMode::kModelDriven and at least one model window had enough
  /// samples; `result.resilience.model_recomputes` counts the rederives).
  /// The replay charges planned mean delays and has no hedge path, so the
  /// gates are metered — exported, never applied to a decision.
  resilience::CloningPrediction model_prediction;
};

/// Replays `records` (sorted by arrival_ms; throws otherwise) through the
/// two-level policy against server-delay model `g`, with per-page QoE
/// models from `qoe_of_page`. Each group's offered load is estimated as its
/// own arrival rate times `rps_planning_factor`; each record takes the
/// decision its external delay maps to in the group's table and is charged
/// the mean of that decision's delay distribution under the planned split.
/// Shard resolution follows PolicyConfig::parallel_workers: 0 picks
/// ThreadPool::DefaultWorkers(), 1 is serial, N > 1 uses N shards
/// (negative throws). Fault plans are not supported (RequireNoFaultPlan).
///
/// When `common.abandonment.enabled`, a session whose total delay
/// (external + planned mean server delay) exceeds its seeded patience quits:
/// the triggering request and the session's later requests in the same
/// group are marked kAbandoned, and from the *next* analysis window on the
/// session's requests are excluded from group load (bucketizer and planned
/// rps) entirely. Quits propagate through the global session set only on
/// the serial merge path, and every window is flushed before the next one
/// routes, so results stay byte-identical at any shard count
/// (docs/OBJECTIVES.md has the full semantics).
/// `qoe_of_page` (and the models it returns) must be safe to call from
/// several shard threads at once — the standard selectors return immutable
/// models and are.
ShardedReplayResult ReplayTraceSharded(std::span<const TraceRecord> records,
                                       const QoeModelSelector& qoe_of_page,
                                       const ServerDelayModel& g,
                                       const ShardedReplayConfig& config);

/// Batch counterpart of ReplayTraceSharded: groups the whole trace by
/// (window, page type) up front — peak memory O(day), the historical
/// pre-sharding behavior docs/SCALE.md describes — then solves and merges
/// the groups serially in ascending (window, page) order. Shares the
/// per-group solve and serial merge with the sharded path, including the
/// abandonment semantics and the model-driven gate metering, so its output
/// (ExperimentResult::Serialize(), telemetry exports, qoe_summary,
/// qoe_histogram) byte-matches ReplayTraceSharded at any shard count; the
/// batch-vs-shard abandonment-parity test (tests/scale_test.cc) pins this.
/// `ControllerConfig::shards` is ignored (the batch path is serial).
ShardedReplayResult ReplayTrace(std::span<const TraceRecord> records,
                                const QoeModelSelector& qoe_of_page,
                                const ServerDelayModel& g,
                                const ShardedReplayConfig& config);

}  // namespace e2e
