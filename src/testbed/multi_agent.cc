#include "testbed/multi_agent.h"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>

#include "obs/export.h"
#include "sim/event_loop.h"
#include "testbed/broker_experiment.h"
#include "trace/replay.h"

namespace e2e {
namespace {

// Picks the agent for a record under the sharding scheme.
std::size_t AgentOf(const TraceRecord& rec, AgentSharding sharding,
                    std::size_t num_agents, std::size_t arrival_index,
                    std::span<const double> shard_edges) {
  switch (sharding) {
    case AgentSharding::kRoundRobin:
      return arrival_index % num_agents;
    case AgentSharding::kByExternalDelay: {
      // shard_edges are ascending quantile cuts (size num_agents - 1).
      std::size_t agent = 0;
      while (agent < shard_edges.size() &&
             rec.external_delay_ms >= shard_edges[agent]) {
        ++agent;
      }
      return agent;
    }
  }
  throw std::logic_error("AgentOf: unknown sharding");
}

}  // namespace

ExperimentResult RunMultiAgentExperiment(std::span<const TraceRecord> records,
                                         const QoeModel& qoe,
                                         const MultiAgentConfig& config) {
  if (records.empty()) {
    throw std::invalid_argument("RunMultiAgentExperiment: no records");
  }
  if (config.num_agents < 1) {
    throw std::invalid_argument("RunMultiAgentExperiment: num_agents < 1");
  }
  RequireNoFaultPlan(config.common, "RunMultiAgentExperiment");
  EventLoop loop;
  const EventLoopClock loop_clock(loop);
  const Clock* profile_clock = ProfileClock(config.common, &loop_clock);
  obs::Telemetry telemetry(config.common.collect_telemetry, &loop_clock);
  if (telemetry.enabled()) loop.AttachMetrics(telemetry.metrics);
  const auto num_agents = static_cast<std::size_t>(config.num_agents);

  // Quantile cuts for the pathological sharding.
  std::vector<double> externals;
  externals.reserve(records.size());
  for (const auto& r : records) externals.push_back(r.external_delay_ms);
  std::sort(externals.begin(), externals.end());
  std::vector<double> shard_edges;
  for (std::size_t a = 1; a < num_agents; ++a) {
    shard_edges.push_back(
        externals[a * externals.size() / num_agents]);
  }

  // One global controller; per-agent brokers with table schedulers.
  std::unique_ptr<Controller> controller;
  std::vector<std::shared_ptr<broker::TableScheduler>> schedulers;
  std::vector<std::unique_ptr<broker::MessageBroker>> agents;
  for (std::size_t a = 0; a < num_agents; ++a) {
    std::shared_ptr<broker::MessageScheduler> scheduler;
    if (config.use_e2e) {
      auto table = std::make_shared<broker::TableScheduler>(
          "agent-" + std::to_string(a));
      schedulers.push_back(table);
      scheduler = table;
    } else {
      scheduler = std::make_shared<broker::FifoScheduler>();
    }
    agents.push_back(std::make_unique<broker::MessageBroker>(
        loop, config.broker, std::move(scheduler)));
    if (telemetry.enabled()) {
      agents.back()->AttachMetrics(telemetry.metrics,
                                   "broker.agent" + std::to_string(a));
    }
  }
  if (config.use_e2e) {
    auto qoe_shared = std::shared_ptr<const QoeModel>(&qoe, [](auto*) {});
    // The global G sees the *aggregate* drain rate of all agents.
    auto aggregate = config.broker;
    aggregate.num_consumers *= config.num_agents;
    controller = std::make_unique<Controller>(
        "global", config.common.controller, qoe_shared,
        BuildBrokerServerModel(aggregate), config.common.seed, profile_clock);
    if (telemetry.enabled()) {
      controller->AttachTelemetry(telemetry.metrics, &telemetry.tracer,
                                  "ctrl.global");
    }
  }

  const auto schedule = BuildReplaySchedule(records, config.common.speedup);
  ExperimentResult result;
  result.outcomes.reserve(schedule.size());

  std::size_t arrival_index = 0;
  for (const auto& arrival : schedule) {
    const std::size_t agent =
        AgentOf(arrival.record, config.sharding, num_agents, arrival_index++,
                shard_edges);
    loop.Schedule(arrival.testbed_time_ms, [&, arrival, agent]() {
      const TraceRecord& rec = arrival.record;
      if (controller != nullptr) {
        controller->ObserveArrival(rec.external_delay_ms, loop.Now());
      }
      broker::Message message;
      message.id = rec.request_id;
      message.external_delay_ms = rec.external_delay_ms;
      const double publish_ms = loop.Now();
      agents[agent]->Publish(
          message, [&result, rec, publish_ms,
                    &qoe](const broker::Delivery& delivery) {
            RequestOutcome outcome;
            outcome.id = rec.request_id;
            outcome.arrival_ms = publish_ms;
            outcome.external_delay_ms = rec.external_delay_ms;
            outcome.server_delay_ms = delivery.QueueingDelayMs();
            outcome.qoe =
                qoe.Qoe(rec.external_delay_ms + outcome.server_delay_ms);
            outcome.decision = delivery.priority;
            result.outcomes.push_back(outcome);
          });
    });
  }

  const double horizon_ms = schedule.back().testbed_time_ms + 60000.0;
  if (controller != nullptr) {
    for (double t = config.common.tick_interval_ms; t <= horizon_ms;
         t += config.common.tick_interval_ms) {
      loop.Schedule(t, [&]() {
        if (controller->Tick(loop.Now())) {
          const DecisionTable* table = controller->CurrentTable();
          if (table != nullptr) {
            // The same global table goes to every agent (§9).
            const auto entries = ToSchedulerEntries(*table);
            for (auto& scheduler : schedulers) scheduler->SetTable(entries);
          }
        }
      });
    }
  }

  loop.RunUntil(horizon_ms);
  for (auto& agent : agents) agent->StopConsumers();
  loop.Run();

  for (const auto& agent : agents) {
    result.service_busy_ms += static_cast<double>(agent->delivered_count()) *
                              config.broker.handling_cost_ms;
  }
  if (controller != nullptr) result.controller_stats = controller->stats();
  if (telemetry.enabled()) result.telemetry = telemetry.Snapshot();
  result.Finalize();
  return result;
}

}  // namespace e2e
