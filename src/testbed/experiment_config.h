// The shared experiment-config core (DESIGN.md "Experiment runners").
//
// Every runner used to duplicate the same block of fields — seed, replay
// speedup, controller config, tick cadence, profiling-clock flag, fault
// plan — with per-runner defaults and subtly diverging doc comments. They
// now share this one struct, embedded by composition as the `common`
// member of each runner config (BrokerExperimentConfig, DbExperimentConfig,
// MultiAgentConfig, MultiServiceConfig), with per-runner defaults supplied
// via designated initializers at the embed site. Call sites address the
// shared knobs as `config.common.seed` etc., so a field that is meaningful
// for every runner is spelled the same way everywhere.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "core/controller.h"
#include "fault/plan.h"
#include "qoe/abandonment.h"
#include "resilience/config.h"
#include "util/clock.h"

namespace e2e {

/// Fields shared by every experiment runner. Defaults here are the
/// neutral ones; each runner config overrides seed/speedup in its
/// `common` member initializer.
struct ExperimentConfig {
  /// Root seed; every RNG in the run derives from it (bit-reproducible).
  std::uint64_t seed = 0;

  /// Trace replay speed-up ratio (§7.1): inter-arrival gaps and service
  /// times are both divided by it.
  double speedup = 1.0;

  /// Controller maintenance cadence (table recompute interval).
  double tick_interval_ms = 1000.0;

  /// Profile controller budget accounting against the real wall clock
  /// instead of the run's virtual clock. Only the overhead benches
  /// (Fig. 16/17) and the latency-bound integration test set this: a real
  /// clock makes ControllerStats (and thus Serialize()) non-reproducible.
  /// Telemetry stays on the virtual clock either way.
  bool profile_real_clock = false;

  /// Collect deterministic telemetry (src/obs/) for this run. Off by
  /// default: instrumented components then hold no instruments and the
  /// hot paths pay only a never-taken branch.
  bool collect_telemetry = false;

  ControllerConfig controller;

  /// Deterministic fault plan (docs/FAULTS.md); empty = fault-free run.
  /// Which clause kinds a runner supports is runner-specific — see each
  /// runner's header.
  fault::FaultPlan fault_plan;

  /// Mitigation layer (docs/RESILIENCE.md): deadline-aware retries, hedged
  /// replica reads, circuit breaking, and QoE-aware admission control. All
  /// mechanisms default to disabled, in which case runs replay
  /// byte-identically to the pre-resilience testbed.
  resilience::ResilienceConfig resilience;

  /// Session abandonment model (qoe/abandonment.h, docs/OBJECTIVES.md):
  /// when enabled, a session whose total delay exceeds its seeded patience
  /// threshold quits, and its remaining requests are removed from
  /// downstream load instead of being served. Disabled by default, in
  /// which case runs replay byte-identically to the pre-abandonment
  /// testbed.
  AbandonmentConfig abandonment;

  /// Convenience for the runner configs' per-runner defaults.
  static ExperimentConfig WithSeed(std::uint64_t seed, double speedup = 1.0) {
    ExperimentConfig config;
    config.seed = seed;
    config.speedup = speedup;
    return config;
  }
};

/// The clock the controller profiles its budget against: the real clock
/// when `profile_real_clock` is set, else the run's own virtual clock.
inline const Clock* ProfileClock(const ExperimentConfig& config,
                                 const Clock* loop_clock) {
  return config.profile_real_clock
             ? static_cast<const Clock*>(&RealClock::Instance())
             : loop_clock;
}

/// Guard for runners without fault-injection support: fail loudly instead
/// of silently ignoring a plan the caller expected to run.
inline void RequireNoFaultPlan(const ExperimentConfig& config,
                               const char* runner) {
  if (!config.fault_plan.empty()) {
    throw std::invalid_argument(std::string(runner) +
                                ": fault plans are not supported here; use "
                                "RunBrokerExperiment or RunDbExperiment");
  }
}

}  // namespace e2e
