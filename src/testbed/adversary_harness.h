// Shared evaluation harness for the adversarial fault-plan search
// (fault/adversary.h) against the db testbed.
//
// The search, the committed worst-plan regression test, and the CI smoke
// check (tools/adversary --check) must all score a plan *identically* —
// the fixture records an exact hexfloat QoE regression, and any drift in
// the harness setup shows up as a byte-level mismatch. Centralizing the
// workload, config, and scoring here is what makes that exactness cheap.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/adversary.h"
#include "fault/plan.h"
#include "testbed/db_experiment.h"
#include "testbed/metrics.h"
#include "trace/record.h"

namespace e2e {

/// Harness knobs. The defaults are what the committed fixture
/// (testbed/worst_plan_fixture.h) was recorded under — change them and the
/// fixture must be re-derived with tools/adversary.
struct AdversaryHarnessConfig {
  std::size_t requests = 400;
  std::uint64_t workload_seed = 23;
  double rps = 90.0;
  /// Resilience mode the evaluated system defends with. The fixture
  /// attacks the *model-driven* configuration: the search looks for the
  /// plan the new hedging is worst at, and the regression test pins the
  /// floor it must still hold.
  bool model_driven = true;
};

/// Deterministic db-testbed evaluator for fault plans.
class AdversaryHarness {
 public:
  explicit AdversaryHarness(AdversaryHarnessConfig config = {});

  /// Runs the experiment under `plan` with the harness's resilience
  /// configuration enabled.
  ExperimentResult Run(const fault::FaultPlan& plan) const;

  /// Score for the adversary: fault-free mean QoE minus the plan's mean
  /// QoE (higher = worse damage). Deterministic per (harness, plan).
  double Regression(const fault::FaultPlan& plan) const;

  /// Mean QoE of the fault-free run under the same configuration.
  double baseline_qoe() const { return baseline_qoe_; }

  /// A search space sized to this harness's workload: the fault windows
  /// cover the replay span, replica targets match the cluster.
  fault::AdversaryConfig SearchSpace(std::uint64_t seed, int iterations) const;

  const std::vector<TraceRecord>& records() const { return records_; }

 private:
  DbExperimentConfig ExperimentConfigFor(const fault::FaultPlan& plan) const;

  AdversaryHarnessConfig config_;
  std::vector<TraceRecord> records_;
  double baseline_qoe_ = 0.0;
};

}  // namespace e2e
