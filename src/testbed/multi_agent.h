// Multi-agent deployment study (§9, "Deployment at scale / Multiple
// agents").
//
// A scaled web service runs many broker/client agents, each making
// decisions independently from the same *global* decision lookup table.
// The paper notes a pathology it did not evaluate: if requests are load
// balanced poorly across agents, an agent that only sees insensitive
// requests will put them at the head of its queue — the global table's
// priorities only help when each agent sees a mix. This harness builds
// both the well-balanced and the pathological split and measures the cost.
#pragma once

#include <span>
#include <vector>

#include "broker/broker.h"
#include "qoe/qoe_model.h"
#include "testbed/experiment_config.h"
#include "testbed/metrics.h"
#include "trace/record.h"

namespace e2e {

/// How incoming requests are spread across the agents.
enum class AgentSharding {
  kRoundRobin,      ///< Each agent sees a uniform mix (healthy).
  kByExternalDelay, ///< Agents specialize by external-delay range
                    ///< (pathological: some agents see only one class).
};

/// Multi-agent experiment configuration. Shared knobs live in `common`;
/// this runner has no fault-injection hooks, so `common.fault_plan` must
/// stay empty (the runner throws otherwise).
struct MultiAgentConfig {
  ExperimentConfig common = ExperimentConfig::WithSeed(101);
  int num_agents = 4;
  broker::BrokerParams broker;  ///< Per-agent broker parameters.
  AgentSharding sharding = AgentSharding::kRoundRobin;
  bool use_e2e = true;  ///< false = FIFO on every agent.
};

/// Runs the experiment: one global controller observes all arrivals and
/// publishes one table; each agent applies it to its own queue bank.
ExperimentResult RunMultiAgentExperiment(std::span<const TraceRecord> records,
                                         const QoeModel& qoe,
                                         const MultiAgentConfig& config);

}  // namespace e2e
