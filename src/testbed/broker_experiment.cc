#include "testbed/broker_experiment.h"

#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "fault/injector.h"
#include "obs/export.h"
#include "sim/event_loop.h"

namespace e2e {

std::shared_ptr<const ServerDelayModel> BuildBrokerServerModel(
    const broker::BrokerParams& params) {
  return std::make_shared<PriorityQueueModel>(
      params.priority_levels, params.consume_interval_ms, params.num_consumers,
      params.handling_cost_ms);
}

std::vector<broker::TableScheduler::Entry> ToSchedulerEntries(
    const DecisionTable& table) {
  std::vector<broker::TableScheduler::Entry> entries;
  entries.reserve(table.rows.size());
  for (const auto& row : table.rows) {
    entries.push_back(broker::TableScheduler::Entry{
        .lo = row.lo, .hi = row.hi, .priority = row.decision});
  }
  return entries;
}

ExperimentResult RunBrokerExperiment(std::span<const TraceRecord> records,
                                     const QoeModel& qoe,
                                     const BrokerExperimentConfig& config) {
  if (records.empty()) {
    throw std::invalid_argument("RunBrokerExperiment: no records");
  }
  Rng root(config.common.seed);
  EventLoop loop;
  const EventLoopClock loop_clock(loop);
  const Clock* profile_clock = ProfileClock(config.common, &loop_clock);
  // Telemetry always runs on the virtual clock so exports stay
  // byte-identical even when stats profiling opts into the real clock.
  obs::Telemetry telemetry(config.common.collect_telemetry, &loop_clock);
  if (telemetry.enabled()) loop.AttachMetrics(telemetry.metrics);

  // --- Policy wiring -----------------------------------------------------
  std::shared_ptr<broker::MessageScheduler> scheduler;
  std::shared_ptr<broker::TableScheduler> table_scheduler;
  std::unique_ptr<ReplicatedControllerGroup> controllers;

  const bool uses_controller =
      config.policy == BrokerPolicy::kE2e || config.policy == BrokerPolicy::kSlope;
  switch (config.policy) {
    case BrokerPolicy::kDefault:
      scheduler = std::make_shared<broker::FifoScheduler>();
      break;
    case BrokerPolicy::kDeadline:
      scheduler = std::make_shared<broker::DeadlineScheduler>(
          config.deadline_ms, config.deadline_max_slack_ms);
      break;
    case BrokerPolicy::kSlope:
    case BrokerPolicy::kE2e:
      table_scheduler = std::make_shared<broker::TableScheduler>(
          config.policy == BrokerPolicy::kSlope ? "slope-table" : "e2e-table");
      scheduler = table_scheduler;
      break;
  }
  if (uses_controller) {
    auto qoe_shared = std::shared_ptr<const QoeModel>(&qoe, [](auto*) {});
    auto server_model = BuildBrokerServerModel(config.broker);
    ControllerConfig cc = config.common.controller;
    if (config.policy == BrokerPolicy::kSlope) {
      cc.policy.mapping = MappingAlgorithm::kSlopeBased;
    }
    auto make = [&](const char* name, std::uint64_t salt) {
      auto c = std::make_unique<Controller>(name, cc, qoe_shared, server_model,
                                            config.common.seed ^ salt,
                                            profile_clock);
      c->SetExternalDelayError(config.external_delay_error);
      c->SetRpsError(config.rps_error);
      if (telemetry.enabled()) {
        c->AttachTelemetry(telemetry.metrics, &telemetry.tracer,
                           std::string("ctrl.") + name);
      }
      return c;
    };
    controllers = std::make_unique<ReplicatedControllerGroup>(
        make("primary", 0x61ULL), make("backup", 0x62ULL), FailoverParams{});
  }

  broker::MessageBroker broker(loop, config.broker, scheduler);
  if (telemetry.enabled()) broker.AttachMetrics(telemetry.metrics);

  // --- Replay ------------------------------------------------------------
  const auto schedule = BuildReplaySchedule(records, config.common.speedup);
  ExperimentResult result;
  result.outcomes.reserve(schedule.size());
  result.arrivals = schedule.size();

  // --- Fault plan --------------------------------------------------------
  // Dropped messages still produce an outcome (status kDropped) so every
  // arrival is accounted for.
  broker.SetDropCallback(
      [&result](const broker::Message& message, double publish_ms) {
        RequestOutcome outcome;
        outcome.id = message.id;
        outcome.arrival_ms = publish_ms;
        outcome.external_delay_ms = message.external_delay_ms;
        outcome.status = RequestStatus::kDropped;
        result.outcomes.push_back(outcome);
      });
  std::unique_ptr<fault::FaultInjector> injector;
  if (!config.common.fault_plan.empty()) {
    fault::FaultTargets targets;
    targets.controllers = controllers.get();
    targets.broker = &broker;
    targets.base_external_error = config.external_delay_error;
    if (controllers != nullptr) {
      auto* group = controllers.get();
      targets.apply_external_error = [group](double error) {
        group->SetExternalDelayError(error);
      };
    }
    injector = std::make_unique<fault::FaultInjector>(
        loop, config.common.fault_plan, std::move(targets));
    if (telemetry.enabled()) {
      injector->AttachTelemetry(telemetry.metrics, &telemetry.tracer);
    }
    injector->Arm();
  }

  for (const auto& arrival : schedule) {
    loop.Schedule(arrival.testbed_time_ms, [&, arrival]() {
      const TraceRecord& rec = arrival.record;
      if (controllers != nullptr) {
        controllers->ObserveArrival(rec.external_delay_ms, loop.Now());
      }
      broker::Message message;
      message.id = rec.request_id;
      message.external_delay_ms = rec.external_delay_ms;
      const double publish_ms = loop.Now();
      broker.Publish(message, [&result, rec, publish_ms,
                               &qoe](const broker::Delivery& delivery) {
        RequestOutcome outcome;
        outcome.id = rec.request_id;
        outcome.arrival_ms = publish_ms;
        outcome.external_delay_ms = rec.external_delay_ms;
        outcome.server_delay_ms = delivery.QueueingDelayMs();
        outcome.qoe = qoe.Qoe(rec.external_delay_ms + outcome.server_delay_ms);
        outcome.decision = delivery.priority;
        result.outcomes.push_back(outcome);
      });
    });
  }

  const double horizon_ms = schedule.back().testbed_time_ms + 60000.0;
  if (controllers != nullptr) {
    for (double t = config.common.tick_interval_ms; t <= horizon_ms;
         t += config.common.tick_interval_ms) {
      loop.Schedule(t, [&]() {
        if (controllers->Tick(loop.Now())) {
          const DecisionTable* table = controllers->active().CurrentTable();
          if (table != nullptr) {
            table_scheduler->SetTable(ToSchedulerEntries(*table));
          }
        }
      });
    }
  }

  // Run to the horizon, then stop consumers so the loop can drain.
  loop.RunUntil(horizon_ms);
  broker.StopConsumers();
  loop.Run();

  // Broker busy time: one handling cost per delivered message.
  result.service_busy_ms =
      static_cast<double>(broker.delivered_count()) *
      config.broker.handling_cost_ms;
  if (controllers != nullptr) {
    result.controller_stats = controllers->active().stats();
  }
  if (injector != nullptr) {
    result.injected_faults = injector->injected();
  }
  if (telemetry.enabled()) result.telemetry = telemetry.Snapshot();
  result.Finalize();
  return result;
}

}  // namespace e2e
