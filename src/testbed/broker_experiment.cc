#include "testbed/broker_experiment.h"

#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "fault/injector.h"
#include "obs/export.h"
#include "obs/trace_span.h"
#include "resilience/admission.h"
#include "resilience/circuit_breaker.h"
#include "resilience/cloning_model.h"
#include "resilience/retry_policy.h"
#include "sim/event_loop.h"
#include "stats/bucketizer.h"

namespace e2e {
namespace {

// Per-priority-queue circuit breaking as a scheduler decorator: a queue
// whose recent deliveries kept breaching the slow threshold is taken out of
// rotation, and messages assigned to it reroute to the nearest queue (in
// priority distance, higher priority preferred on ties) whose breaker
// admits. The experiment feeds delivery outcomes back via RecordDelivery.
class BreakerScheduler final : public broker::MessageScheduler {
 public:
  BreakerScheduler(std::shared_ptr<broker::MessageScheduler> inner,
                   const resilience::BreakerConfig& config, int levels,
                   EventLoop& loop)
      : inner_(std::move(inner)), config_(config), loop_(loop) {
    breakers_.reserve(static_cast<std::size_t>(levels));
    slowness_.reserve(static_cast<std::size_t>(levels));
    for (int i = 0; i < levels; ++i) {
      breakers_.emplace_back(config_);
      slowness_.emplace_back(config_);
    }
    spans_.resize(static_cast<std::size_t>(levels));
  }

  int AssignPriority(const broker::Message& message,
                     const broker::BrokerView& view) override {
    const int base = inner_->AssignPriority(message, view);
    const double now = loop_.Now();
    if (breakers_[static_cast<std::size_t>(base)].AllowRequest(now)) {
      return base;
    }
    const int levels = static_cast<int>(breakers_.size());
    for (int off = 1; off < levels; ++off) {
      for (const int cand : {base - off, base + off}) {
        if (cand < 0 || cand >= levels) continue;
        auto& breaker = breakers_[static_cast<std::size_t>(cand)];
        if (breaker.WouldAllow(now) && breaker.AllowRequest(now)) {
          ++reroutes_;
          if (metric_reroutes_ != nullptr) metric_reroutes_->Increment();
          return cand;
        }
      }
    }
    return base;  // Every queue's breaker is open: the assignment stands.
  }

  std::string Name() const override { return inner_->Name() + "+breakers"; }

  /// Feeds one delivery's queueing delay back into its queue's breaker.
  /// The slow threshold adapts per queue (SlownessTracker): a low-priority
  /// queue waits long by design, and a fixed threshold would open its
  /// breaker on healthy traffic.
  void RecordDelivery(int priority, double queueing_delay_ms, double now_ms) {
    auto& breaker = breakers_[static_cast<std::size_t>(priority)];
    if (slowness_[static_cast<std::size_t>(priority)].RecordAndClassify(
            queueing_delay_ms)) {
      breaker.RecordFailure(now_ms);
    } else {
      breaker.RecordSuccess(now_ms);
    }
  }

  /// resilience.breaker_transitions / .breaker_reroutes counters plus one
  /// resilience.broker.p<i>.open span per breaker-open episode.
  void AttachTelemetry(obs::MetricsRegistry& registry, obs::Tracer* tracer) {
    metric_transitions_ =
        &registry.AddCounter("resilience.breaker_transitions");
    metric_reroutes_ = &registry.AddCounter("resilience.breaker_reroutes");
    tracer_ = tracer;
  }

  std::uint64_t reroutes() const { return reroutes_; }

  resilience::BreakerStats TotalStats() const {
    resilience::BreakerStats total;
    for (const auto& breaker : breakers_) {
      total.opens += breaker.stats().opens;
      total.half_opens += breaker.stats().half_opens;
      total.closes += breaker.stats().closes;
      total.rejections += breaker.stats().rejections;
    }
    return total;
  }

  /// Installs the transition hooks (call once, after AttachTelemetry when
  /// telemetry is on).
  void InstallHooks() {
    for (std::size_t i = 0; i < breakers_.size(); ++i) {
      breakers_[i].SetTransitionHook(
          [this, i](resilience::CircuitBreaker::State from,
                    resilience::CircuitBreaker::State to, double) {
            if (metric_transitions_ != nullptr) {
              metric_transitions_->Increment();
            }
            if (tracer_ == nullptr) return;
            if (to == resilience::CircuitBreaker::State::kOpen) {
              spans_[i] = tracer_->StartSpan("resilience.broker.p" +
                                             std::to_string(i) + ".open");
            } else if (from == resilience::CircuitBreaker::State::kOpen) {
              spans_[i].End();
            }
          });
    }
  }

 private:
  std::shared_ptr<broker::MessageScheduler> inner_;
  resilience::BreakerConfig config_;
  EventLoop& loop_;
  std::vector<resilience::CircuitBreaker> breakers_;
  std::vector<resilience::SlownessTracker> slowness_;  // One per queue.
  std::uint64_t reroutes_ = 0;
  obs::Counter* metric_transitions_ = nullptr;
  obs::Counter* metric_reroutes_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  std::vector<obs::Span> spans_;  // One per queue while open.
};

}  // namespace

std::shared_ptr<const ServerDelayModel> BuildBrokerServerModel(
    const broker::BrokerParams& params) {
  return std::make_shared<PriorityQueueModel>(
      params.priority_levels, params.consume_interval_ms, params.num_consumers,
      params.handling_cost_ms);
}

std::vector<broker::TableScheduler::Entry> ToSchedulerEntries(
    const DecisionTable& table) {
  std::vector<broker::TableScheduler::Entry> entries;
  entries.reserve(table.rows.size());
  for (const auto& row : table.rows) {
    entries.push_back(broker::TableScheduler::Entry{
        .lo = row.lo, .hi = row.hi, .priority = row.decision});
  }
  return entries;
}

ExperimentResult RunBrokerExperiment(std::span<const TraceRecord> records,
                                     const QoeModel& qoe,
                                     const BrokerExperimentConfig& config) {
  if (records.empty()) {
    throw std::invalid_argument("RunBrokerExperiment: no records");
  }
  Rng root(config.common.seed);
  EventLoop loop;
  const EventLoopClock loop_clock(loop);
  const Clock* profile_clock = ProfileClock(config.common, &loop_clock);
  // Telemetry always runs on the virtual clock so exports stay
  // byte-identical even when stats profiling opts into the real clock.
  obs::Telemetry telemetry(config.common.collect_telemetry, &loop_clock);
  if (telemetry.enabled()) loop.AttachMetrics(telemetry.metrics);

  // --- Policy wiring -----------------------------------------------------
  std::shared_ptr<broker::MessageScheduler> scheduler;
  std::shared_ptr<broker::TableScheduler> table_scheduler;
  std::unique_ptr<ReplicatedControllerGroup> controllers;

  const bool uses_controller =
      config.policy == BrokerPolicy::kE2e || config.policy == BrokerPolicy::kSlope;
  switch (config.policy) {
    case BrokerPolicy::kDefault:
      scheduler = std::make_shared<broker::FifoScheduler>();
      break;
    case BrokerPolicy::kDeadline:
      scheduler = std::make_shared<broker::DeadlineScheduler>(
          config.deadline_ms, config.deadline_max_slack_ms);
      break;
    case BrokerPolicy::kSlope:
    case BrokerPolicy::kE2e:
      table_scheduler = std::make_shared<broker::TableScheduler>(
          config.policy == BrokerPolicy::kSlope ? "slope-table" : "e2e-table");
      scheduler = table_scheduler;
      break;
  }
  if (uses_controller) {
    auto qoe_shared = std::shared_ptr<const QoeModel>(&qoe, [](auto*) {});
    auto server_model = BuildBrokerServerModel(config.broker);
    ControllerConfig cc = config.common.controller;
    if (config.policy == BrokerPolicy::kSlope) {
      cc.policy.mapping = MappingAlgorithm::kSlopeBased;
    }
    auto make = [&](const char* name, std::uint64_t salt) {
      auto c = std::make_unique<Controller>(name, cc, qoe_shared, server_model,
                                            config.common.seed ^ salt,
                                            profile_clock);
      c->SetExternalDelayError(config.external_delay_error);
      c->SetRpsError(config.rps_error);
      if (telemetry.enabled()) {
        c->AttachTelemetry(telemetry.metrics, &telemetry.tracer,
                           std::string("ctrl.") + name);
      }
      return c;
    };
    controllers = std::make_unique<ReplicatedControllerGroup>(
        make("primary", 0x61ULL), make("backup", 0x62ULL), FailoverParams{});
  }

  // --- Resilience layer --------------------------------------------------
  const resilience::ResilienceConfig& resil = config.common.resilience;
  std::shared_ptr<BreakerScheduler> breaker_scheduler;
  if (resil.breaker.enabled) {
    breaker_scheduler = std::make_shared<BreakerScheduler>(
        scheduler, resil.breaker, config.broker.priority_levels, loop);
    scheduler = breaker_scheduler;
  }

  broker::MessageBroker broker(loop, config.broker, scheduler);
  if (telemetry.enabled()) broker.AttachMetrics(telemetry.metrics);

  std::unique_ptr<resilience::AdmissionController> admission;
  if (resil.admission.enabled) {
    admission =
        std::make_unique<resilience::AdmissionController>(resil.admission, qoe);
  }
  std::optional<resilience::RetryPolicy> retry;
  if (resil.retry.enabled) retry.emplace(resil.retry, root.Fork(5));
  obs::Counter* metric_retries = nullptr;
  obs::Counter* metric_retries_exhausted = nullptr;
  if (telemetry.enabled()) {
    if (admission != nullptr) admission->AttachMetrics(telemetry.metrics);
    if (breaker_scheduler != nullptr) {
      breaker_scheduler->AttachTelemetry(telemetry.metrics, &telemetry.tracer);
    }
    if (retry.has_value()) {
      metric_retries = &telemetry.metrics.AddCounter("resilience.retries");
      metric_retries_exhausted =
          &telemetry.metrics.AddCounter("resilience.retries_exhausted");
    }
  }
  if (breaker_scheduler != nullptr) breaker_scheduler->InstallHooks();

  // --- Model-driven hedge-gate metering ----------------------------------
  // The broker tier has no hedge path (cloning a publish would double-
  // deliver), so HedgeMode::kModelDriven here derives and meters the
  // PS-model gates (resilience/cloning_model.h) from delivered queueing
  // delays without changing any routing decision: one mode flows end to
  // end through the shared ExperimentConfig, and operators read the
  // broker tier's predicted cloning gain from the same telemetry names the
  // db testbed exports. Metrics are registered only in model mode so
  // static/stock exports keep their historical byte stream. Utilization is
  // the consumers' busy fraction: delivered handling work over elapsed
  // virtual time across all consumers.
  const bool model_driven =
      resil.hedge.enabled &&
      resil.hedge.mode == resilience::HedgeMode::kModelDriven;
  std::optional<resilience::CloningModel> cloning_model;
  std::optional<Bucketizer> service_window;
  double model_work_ms = 0.0;
  double model_reset_ms = 0.0;
  double next_model_recompute_ms = 0.0;
  std::uint64_t model_recomputes = 0;
  resilience::CloningPrediction last_prediction;
  obs::Counter* metric_model_recomputes = nullptr;
  obs::Gauge* metric_model_fraction = nullptr;
  obs::Gauge* metric_model_target_load = nullptr;
  obs::Gauge* metric_model_gain = nullptr;
  if (model_driven) {
    const resilience::CloningModelConfig& model = resil.hedge.model;
    cloning_model.emplace(model);  // Validates the knobs.
    service_window.emplace(model.target_buckets, model.max_span_ms);
    next_model_recompute_ms = model.window_ms;
    if (telemetry.enabled()) {
      metric_model_recomputes =
          &telemetry.metrics.AddCounter("broker.resilience.model.recomputes");
      metric_model_fraction =
          &telemetry.metrics.AddGauge("broker.resilience.model.hedge_fraction");
      metric_model_target_load =
          &telemetry.metrics.AddGauge("broker.resilience.model.target_load");
      metric_model_gain = &telemetry.metrics.AddGauge(
          "broker.resilience.model.predicted_gain_ms");
    }
  }
  // Folds one delivery into the model window and re-derives the gates at
  // every elapsed model-window boundary with enough samples (thin windows
  // keep accumulating — the ReadExecutor::MaybeRecomputeBudgets contract).
  // Only called from (single-threaded) event-loop callbacks.
  auto record_model = [&](const broker::Delivery& delivery) {
    if (!model_driven) return;
    const resilience::CloningModelConfig& model = resil.hedge.model;
    const double now = loop.Now();
    while (now >= next_model_recompute_ms) {
      const double boundary = next_model_recompute_ms;
      next_model_recompute_ms += model.window_ms;
      if (service_window->sample_count() <
          static_cast<std::size_t>(model.min_samples)) {
        continue;
      }
      const double elapsed = boundary - model_reset_ms;
      const double utilization =
          model_work_ms /
          (elapsed * static_cast<double>(config.broker.num_consumers));
      last_prediction = cloning_model->Predict(*service_window, utilization);
      ++model_recomputes;
      if (metric_model_recomputes != nullptr) {
        metric_model_recomputes->Increment();
        metric_model_fraction->Set(last_prediction.max_hedge_fraction);
        metric_model_target_load->Set(last_prediction.max_target_load);
        metric_model_gain->Set(last_prediction.predicted_gain_ms);
      }
      service_window.emplace(model.target_buckets, model.max_span_ms);
      model_work_ms = 0.0;
      model_reset_ms = boundary;
    }
    service_window->Add(delivery.QueueingDelayMs());
    model_work_ms += config.broker.handling_cost_ms;
  };

  // --- Session abandonment ----------------------------------------------
  // Same semantics as the db runner: keyed on the true external delay, the
  // session set only touched from (single-threaded) event-loop callbacks,
  // and the counter registered only when the model is live so stock
  // telemetry exports stay byte-identical.
  const AbandonmentModel abandonment(config.common.abandonment);
  std::unordered_set<std::uint64_t> abandoned_sessions;
  obs::Counter* metric_abandoned =
      abandonment.enabled()
          ? &telemetry.metrics.AddCounter("testbed.abandoned")
          : nullptr;

  // --- Replay ------------------------------------------------------------
  const auto schedule = BuildReplaySchedule(records, config.common.speedup);
  ExperimentResult result;
  result.outcomes.reserve(schedule.size());
  result.arrivals = schedule.size();

  // --- Fault plan --------------------------------------------------------
  // Dropped messages still produce an outcome (status kDropped) so every
  // arrival is accounted for. With retries on, the publish wrapper below
  // owns drop accounting instead (a drop may still be retried).
  if (!resil.retry.enabled) {
    broker.SetDropCallback(
        [&result](const broker::Message& message, double publish_ms) {
          RequestOutcome outcome;
          outcome.id = message.id;
          outcome.arrival_ms = publish_ms;
          outcome.external_delay_ms = message.external_delay_ms;
          outcome.status = RequestStatus::kDropped;
          result.outcomes.push_back(outcome);
        });
  }
  std::unique_ptr<fault::FaultInjector> injector;
  if (!config.common.fault_plan.empty()) {
    fault::FaultTargets targets;
    targets.controllers = controllers.get();
    targets.broker = &broker;
    targets.base_external_error = config.external_delay_error;
    if (controllers != nullptr) {
      auto* group = controllers.get();
      targets.apply_external_error = [group](double error) {
        group->SetExternalDelayError(error);
      };
    }
    injector = std::make_unique<fault::FaultInjector>(
        loop, config.common.fault_plan, std::move(targets));
    if (telemetry.enabled()) {
      injector->AttachTelemetry(telemetry.metrics, &telemetry.tracer);
    }
    injector->Arm();
  }

  // Publishes one message, retrying fault drops with jittered backoff when
  // the retry policy grants one. Shared so the backoff continuation can
  // re-enter it; `forced_priority >= 0` pins an admission downgrade across
  // retries. With resilience off this reduces exactly to the legacy
  // publish-with-confirm (first_ms == the broker's publish time).
  auto publish = std::make_shared<
      std::function<void(broker::Message, int, double, int, std::uint64_t)>>();
  *publish = [&, publish](broker::Message message, int failures,
                          double first_ms, int forced_priority,
                          std::uint64_t session_id) {
    auto confirm = [&result, &qoe, &loop, &abandonment, &abandoned_sessions,
                    &record_model, metric_abandoned, first_ms,
                    breaker = breaker_scheduler.get(), id = message.id,
                    external = message.external_delay_ms,
                    session_id](const broker::Delivery& delivery) {
      if (breaker != nullptr) {
        breaker->RecordDelivery(delivery.priority, delivery.QueueingDelayMs(),
                                loop.Now());
      }
      record_model(delivery);
      RequestOutcome outcome;
      outcome.id = id;
      outcome.arrival_ms = first_ms;
      outcome.external_delay_ms = external;
      // The retry wait counts against the request: server-side delay runs
      // from the first publish attempt, not the one that got through.
      outcome.server_delay_ms = delivery.deliver_ms - first_ms;
      outcome.decision = delivery.priority;
      const double total_delay = external + outcome.server_delay_ms;
      if (abandonment.enabled() &&
          (abandoned_sessions.count(session_id) > 0 ||
           abandonment.Abandons(session_id, qoe.Classify(external),
                                total_delay))) {
        outcome.status = RequestStatus::kAbandoned;
        abandoned_sessions.insert(session_id);
        if (metric_abandoned != nullptr) metric_abandoned->Increment();
      } else {
        outcome.qoe = qoe.Qoe(total_delay);
      }
      result.outcomes.push_back(outcome);
    };
    const bool ok =
        forced_priority >= 0
            ? broker.PublishWithPriority(message, forced_priority,
                                         std::move(confirm))
            : broker.Publish(message, std::move(confirm));
    if (ok || !retry.has_value()) return;  // Drop callback covers the rest.
    const std::optional<double> backoff =
        retry->NextBackoffMs(failures + 1, loop.Now() - first_ms,
                             qoe.Classify(message.external_delay_ms));
    if (backoff.has_value()) {
      if (metric_retries != nullptr) metric_retries->Increment();
      loop.ScheduleAfter(*backoff, [publish, message, failures, first_ms,
                                    forced_priority, session_id]() {
        (*publish)(message, failures + 1, first_ms, forced_priority,
                   session_id);
      });
      return;
    }
    if (metric_retries_exhausted != nullptr) {
      metric_retries_exhausted->Increment();
    }
    RequestOutcome outcome;  // Out of attempts/deadline/budget: lost.
    outcome.id = message.id;
    outcome.arrival_ms = first_ms;
    outcome.external_delay_ms = message.external_delay_ms;
    outcome.status = RequestStatus::kDropped;
    result.outcomes.push_back(outcome);
  };

  for (const auto& arrival : schedule) {
    loop.Schedule(arrival.testbed_time_ms, [&, arrival]() {
      const TraceRecord& rec = arrival.record;
      // A request from a session that already quit never reaches the
      // controller, admission, or the broker: the user is gone, so the
      // load is too.
      if (abandonment.enabled() &&
          abandoned_sessions.count(rec.session_id) > 0) {
        RequestOutcome outcome;
        outcome.id = rec.request_id;
        outcome.arrival_ms = loop.Now();
        outcome.external_delay_ms = rec.external_delay_ms;
        outcome.status = RequestStatus::kAbandoned;
        result.outcomes.push_back(outcome);
        if (metric_abandoned != nullptr) metric_abandoned->Increment();
        return;
      }
      if (controllers != nullptr) {
        controllers->ObserveArrival(rec.external_delay_ms, loop.Now());
      }
      broker::Message message;
      message.id = rec.request_id;
      message.external_delay_ms = rec.external_delay_ms;
      const double publish_ms = loop.Now();
      if (admission != nullptr) {
        int depth = 0;
        for (const int d : broker.View().queue_depths) depth += d;
        switch (admission->Decide(rec.external_delay_ms, depth)) {
          case resilience::AdmissionDecision::kShed: {
            RequestOutcome outcome;
            outcome.id = rec.request_id;
            outcome.arrival_ms = publish_ms;
            outcome.external_delay_ms = rec.external_delay_ms;
            outcome.status = RequestStatus::kShed;
            result.outcomes.push_back(outcome);
            return;
          }
          case resilience::AdmissionDecision::kDowngrade:
            (*publish)(message, 0, publish_ms,
                       config.broker.priority_levels - 1, rec.session_id);
            return;
          case resilience::AdmissionDecision::kAdmit:
            break;
        }
      }
      (*publish)(message, 0, publish_ms, -1, rec.session_id);
    });
  }

  const double horizon_ms = schedule.back().testbed_time_ms + 60000.0;
  if (controllers != nullptr) {
    for (double t = config.common.tick_interval_ms; t <= horizon_ms;
         t += config.common.tick_interval_ms) {
      loop.Schedule(t, [&]() {
        if (controllers->Tick(loop.Now())) {
          const DecisionTable* table = controllers->active().CurrentTable();
          if (table != nullptr) {
            table_scheduler->SetTable(ToSchedulerEntries(*table));
          }
        }
      });
    }
  }

  // Run to the horizon, then stop consumers so the loop can drain.
  loop.RunUntil(horizon_ms);
  broker.StopConsumers();
  loop.Run();
  if (resil.AnyEnabled()) {
    // Open-ended overload can leave a backlog past the horizon; pull it
    // synchronously so every publish still confirms (the conservation
    // invariant). Alternate with Run(): a drained confirm can grant a
    // backoff retry that re-publishes past the stopped consumers.
    bool drained = true;
    while (drained) {
      drained = false;
      while (broker.TryPull().has_value()) drained = true;
      loop.Run();
    }
  }

  // Broker busy time: one handling cost per delivered message.
  result.service_busy_ms =
      static_cast<double>(broker.delivered_count()) *
      config.broker.handling_cost_ms;
  if (controllers != nullptr) {
    result.controller_stats = controllers->active().stats();
  }
  if (injector != nullptr) {
    result.injected_faults = injector->injected();
  }
  if (resil.AnyEnabled()) {
    if (admission != nullptr) {
      result.resilience.shed = admission->stats().shed;
      result.resilience.downgraded = admission->stats().downgraded;
    }
    if (retry.has_value()) {
      result.resilience.retries = retry->stats().granted;
      result.resilience.retries_exhausted = retry->stats().exhausted;
    }
    if (breaker_scheduler != nullptr) {
      const resilience::BreakerStats breakers = breaker_scheduler->TotalStats();
      result.resilience.breaker_opens = breakers.opens;
      result.resilience.breaker_half_opens = breakers.half_opens;
      result.resilience.breaker_closes = breakers.closes;
      result.resilience.breaker_rejections = breakers.rejections;
    }
    result.resilience.model_recomputes = model_recomputes;
  }
  if (telemetry.enabled()) result.telemetry = telemetry.Snapshot();
  result.Finalize();
  return result;
}

}  // namespace e2e
