// Complex request structures (§9, "Complex request structures") — the
// paper's primary future-work direction, prototyped here.
//
// A high-level web request fans out to TWO backend services and completes
// only when both respond (partition-aggregate). Applying E2E to each
// service in isolation is suboptimal: a service may prioritize a request
// whose completion is actually gated by the *other* service. The
// dependency-aware variant inflates each request's external delay, as seen
// by service A, with the expected residual delay of service B (and vice
// versa), so each service deprioritizes requests it cannot actually speed
// up — exactly the Fig. 11 reasoning lifted across services.
#pragma once

#include <span>

#include "broker/broker.h"
#include "qoe/qoe_model.h"
#include "testbed/experiment_config.h"
#include "testbed/metrics.h"
#include "trace/record.h"

namespace e2e {

/// How the two services' controllers see each other.
enum class CrossServiceMode {
  kIsolated,         ///< Each service optimizes alone (the paper's §9 strawman).
  kDependencyAware,  ///< Each service adds the sibling's expected delay to
                     ///< the request's external delay.
};

/// Two-service experiment configuration. Both services are brokers (the
/// decision surface is priorities). Every request needs service A; a
/// `fanout_probability` fraction additionally needs the slower service B
/// and completes only when both legs respond — the paper's §9 example of a
/// request "that also depends on another, much slower service".
/// Shared knobs live in `common`; this runner has no fault-injection
/// hooks, so `common.fault_plan` must stay empty (the runner throws
/// otherwise).
struct MultiServiceConfig {
  ExperimentConfig common = ExperimentConfig::WithSeed(211);
  broker::BrokerParams service_a;
  broker::BrokerParams service_b;
  CrossServiceMode mode = CrossServiceMode::kIsolated;
  bool use_e2e = true;  ///< false = FIFO on both services.
  /// When true (default), service B is a legacy FIFO service E2E does not
  /// control — the paper's motivating case: B's delay is outside A's and
  /// E2E's reach, so A must plan around it rather than through it.
  bool service_b_legacy_fifo = true;
  double fanout_probability = 0.5;  ///< Fraction of requests also needing B.
};

/// Runs the experiment. A request's server-side delay is the MAX of its
/// legs' queueing delays (aggregation waits for the slower leg).
ExperimentResult RunMultiServiceExperiment(
    std::span<const TraceRecord> records, const QoeModel& qoe,
    const MultiServiceConfig& config);

}  // namespace e2e
