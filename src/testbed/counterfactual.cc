#include "testbed/counterfactual.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <string>

#include "matching/assignment.h"
#include "trace/windows.h"
#include "util/rng.h"

namespace e2e {
namespace {

[[noreturn]] void UnsupportedClause(const fault::FaultSpec& spec,
                                    const char* why) {
  throw std::invalid_argument(
      std::string("ApplyFaultPlanToTrace: unsupported clause '") +
      spec.ToString() + "': " + why +
      "; use RunDbExperiment/RunBrokerExperiment for this plan");
}

// Re-assigns the group's server delays according to the policy; returns the
// new delay for each request (indexed as the group).
std::vector<DelayMs> AssignDelays(std::span<const TraceRecord> group,
                                  const QoeModel& qoe,
                                  ReshufflePolicy policy) {
  const std::size_t n = group.size();
  std::vector<DelayMs> assigned(n);
  switch (policy) {
    case ReshufflePolicy::kRecorded: {
      for (std::size_t i = 0; i < n; ++i) {
        assigned[i] = group[i].server_delay_ms;
      }
      return assigned;
    }
    case ReshufflePolicy::kZeroServerDelay: {
      std::fill(assigned.begin(), assigned.end(), 0.0);
      return assigned;
    }
    case ReshufflePolicy::kSlopeRanked: {
      // k-th largest delay -> request with k-th smallest |dQ/dd| at c_i.
      std::vector<std::size_t> by_sensitivity(n);
      std::iota(by_sensitivity.begin(), by_sensitivity.end(), std::size_t{0});
      std::stable_sort(by_sensitivity.begin(), by_sensitivity.end(),
                [&](std::size_t a, std::size_t b) {
                  return qoe.Sensitivity(group[a].external_delay_ms) <
                         qoe.Sensitivity(group[b].external_delay_ms);
                });
      std::vector<DelayMs> delays(n);
      for (std::size_t i = 0; i < n; ++i) delays[i] = group[i].server_delay_ms;
      std::sort(delays.begin(), delays.end(), std::greater<>());
      for (std::size_t k = 0; k < n; ++k) {
        assigned[by_sensitivity[k]] = delays[k];
      }
      return assigned;
    }
    case ReshufflePolicy::kOptimalMatching: {
      std::vector<DelayMs> delays(n);
      for (std::size_t i = 0; i < n; ++i) delays[i] = group[i].server_delay_ms;
      WeightMatrix weights(n, n);
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          weights.At(i, j) = qoe.Qoe(group[i].external_delay_ms + delays[j]);
        }
      }
      const AssignmentResult matching = SolveMaxWeightAssignment(weights);
      for (std::size_t i = 0; i < n; ++i) {
        assigned[i] = delays[matching.column_of_row[i]];
      }
      return assigned;
    }
  }
  throw std::logic_error("AssignDelays: unknown policy");
}

}  // namespace

ReshuffleResult ReshuffleWithinWindows(std::span<const TraceRecord> records,
                                       const QoeModelSelector& qoe_of_page,
                                       ReshufflePolicy policy,
                                       double window_ms,
                                       std::size_t min_group) {
  if (!qoe_of_page) {
    throw std::invalid_argument("ReshuffleWithinWindows: no QoE selector");
  }
  ReshuffleResult result;
  const auto groups = GroupByWindow(records, window_ms);
  double old_sum = 0.0;
  double new_sum = 0.0;
  for (const auto& [key, group] : groups) {
    const QoeModel& qoe = qoe_of_page(key.page_type);
    const ReshufflePolicy group_policy =
        group.size() >= min_group ? policy : ReshufflePolicy::kRecorded;
    const auto assigned = AssignDelays(group, qoe, group_policy);
    ++result.groups;
    for (std::size_t i = 0; i < group.size(); ++i) {
      ReshuffledRequest rr;
      rr.record = group[i];
      rr.new_server_delay_ms = assigned[i];
      rr.old_qoe = qoe.Qoe(group[i].TotalDelayMs());
      rr.new_qoe = qoe.Qoe(group[i].external_delay_ms + assigned[i]);
      old_sum += rr.old_qoe;
      new_sum += rr.new_qoe;
      result.requests.push_back(rr);
    }
  }
  if (!result.requests.empty()) {
    const auto n = static_cast<double>(result.requests.size());
    result.old_mean_qoe = old_sum / n;
    result.new_mean_qoe = new_sum / n;
  }
  return result;
}

std::vector<TraceRecord> ApplyFaultPlanToTrace(
    std::span<const TraceRecord> records, const fault::FaultPlan& plan) {
  plan.Validate();
  std::vector<TraceRecord> out(records.begin(), records.end());
  for (const auto& spec : plan.faults) {
    const auto in_window = [&spec](const TraceRecord& r) {
      return r.arrival_ms >= spec.start_ms && r.arrival_ms < spec.end_ms;
    };
    switch (spec.kind) {
      case fault::FaultKind::kDelayMessages:
      case fault::FaultKind::kDelayReplica:
        if (spec.replica != -1) {
          UnsupportedClause(spec, "the trace has no replicas to target");
        }
        for (auto& r : out) {
          if (in_window(r)) r.server_delay_ms += spec.delta_ms;
        }
        break;
      case fault::FaultKind::kOverloadReplica:
      case fault::FaultKind::kOverloadBroker:
        if (spec.replica != -1) {
          UnsupportedClause(spec, "the trace has no replicas to target");
        }
        for (auto& r : out) {
          if (in_window(r)) r.server_delay_ms *= spec.factor;
        }
        break;
      case fault::FaultKind::kDropMessages: {
        // One seeded stream per clause, drawn in record order, so the
        // dropped set replays bit-identically.
        Rng drops(spec.seed ^ 0xd20bc1a5ULL);
        std::vector<TraceRecord> kept;
        kept.reserve(out.size());
        for (const auto& r : out) {
          if (in_window(r) && drops.Bernoulli(spec.probability)) continue;
          kept.push_back(r);
        }
        out = std::move(kept);
        break;
      }
      case fault::FaultKind::kCrashController:
        UnsupportedClause(spec, "the trace simulator has no controller");
      case fault::FaultKind::kPartitionReplica:
        UnsupportedClause(spec, "the trace has no replicas to partition");
      case fault::FaultKind::kSkewEstimator:
        UnsupportedClause(spec, "the trace simulator reads oracle delays");
    }
  }
  return out;
}

ReshuffleResult ReshuffleWithinWindows(std::span<const TraceRecord> records,
                                       const QoeModelSelector& qoe_of_page,
                                       ReshufflePolicy policy,
                                       double window_ms,
                                       const ExperimentConfig& config,
                                       std::size_t min_group) {
  if (config.fault_plan.empty()) {
    return ReshuffleWithinWindows(records, qoe_of_page, policy, window_ms,
                                  min_group);
  }
  const std::vector<TraceRecord> faulted =
      ApplyFaultPlanToTrace(records, config.fault_plan);
  return ReshuffleWithinWindows(faulted, qoe_of_page, policy, window_ms,
                                min_group);
}

}  // namespace e2e
