#include "testbed/sharded_replay.h"

#include <algorithm>
#include <cstddef>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <tuple>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/policy.h"
#include "obs/export.h"
#include "stats/bucketizer.h"
#include "trace/windows.h"
#include "util/clock.h"
#include "util/thread_pool.h"
#include "util/types.h"

namespace e2e {
namespace {

// One still-open (page, window) group: delays accumulate into the streaming
// bucketizer as records arrive; the records themselves are needed again at
// solve time for per-request decisions.
struct OpenGroup {
  OpenGroup(int target_buckets, double max_span)
      : externals(target_buckets, max_span) {}

  Bucketizer externals;
  std::vector<const TraceRecord*> records;
  /// Parallel to `records`: set when the record's session had already
  /// abandoned before this window, so the record was excluded from
  /// `externals` at routing time (always false with abandonment off).
  std::vector<std::uint8_t> pre_abandoned;
};

// A closed group queued on its shard, waiting for the next flush.
struct PendingGroup {
  std::int64_t window_index = 0;
  int page_index = 0;
  OpenGroup group;
};

// A solved group: the shard's output slot, merged serially in
// (window_index, page_index) order.
struct SolvedGroup {
  std::int64_t window_index = 0;
  int page_index = 0;
  std::vector<RequestOutcome> outcomes;
  PolicyStats policy_stats;
  /// Page model's MaxQoe(), for per-page histogram normalization.
  double max_qoe = 1.0;
  /// Sessions that quit inside this group, in record order. Applied to the
  /// global abandoned-session set only during the serial merge, so solve()
  /// stays a pure function and shards never race on shared state.
  std::vector<std::uint64_t> newly_abandoned;
};

// Everything the batch and sharded replayers share: config validation, the
// pure per-group solve, and the serial merge that owns the abandonment
// session set, the model-driven metering, and the result aggregates. The
// two entry points differ only in how groups are *built* — streamed into
// per-shard maps vs. grouped up front — which the batch-vs-shard parity
// test (tests/scale_test.cc) pins as unobservable in the output bytes.
class ReplayEngine {
 public:
  ReplayEngine(const QoeModelSelector& qoe_of_page, const ServerDelayModel& g,
               const ShardedReplayConfig& config, const char* caller)
      : qoe_of_page_(qoe_of_page),
        g_(g),
        config_(config),
        ctrl_(config.common.controller),
        window_ms_(ctrl_.external.window_ms),
        policy_(ctrl_.policy),
        abandonment_(config.common.abandonment),
        // Telemetry on the frozen virtual clock: counters are bumped only
        // on the serial routing/merge paths, so exports are shard-count-
        // invariant. The batch path registers the same metric names so its
        // exports byte-match the sharded ones (the parity contract).
        telemetry_(config.common.collect_telemetry, &VirtualClock::Frozen()),
        metric_merges_(
            telemetry_.metrics.AddCounter("controller.shard_merges")),
        metric_windows_(
            telemetry_.metrics.AddCounter("controller.windows_streamed")) {
    RequireNoFaultPlan(config.common, caller);
    // Groups are the unit of parallelism here; the per-group hill climb
    // runs serially on its shard's thread (nesting pools would
    // oversubscribe and buys nothing at this granularity).
    policy_.parallel_workers = 1;
    // Session abandonment (qoe/abandonment.h). The global session set is
    // read on the serial routing path (membership only — never iterated)
    // and written on the serial merge path, so shard threads never touch
    // it. The counter is registered only when the model is live, keeping
    // stock runs' telemetry exports byte-identical.
    abandonment_on_ = abandonment_.enabled();
    if (abandonment_on_) {
      metric_abandoned_ = &telemetry_.metrics.AddCounter("replay.abandoned");
    }
    // Model-driven hedge-gate metering (resilience/cloning_model.h). The
    // replay has no hedge path — it charges planned mean delays — so the
    // mode derives and meters the PS-model gates per model window on the
    // serial merge path without changing any decision: one HedgeMode flows
    // end to end through ExperimentConfig, and the derived gates are
    // exported for the same operators who read them from the testbeds.
    // Registered only in model mode, so static/stock exports keep their
    // historical byte stream.
    const resilience::HedgeConfig& hedge = config.common.resilience.hedge;
    model_driven_ = hedge.enabled &&
                    hedge.mode == resilience::HedgeMode::kModelDriven;
    if (model_driven_) {
      cloning_model_.emplace(hedge.model);  // Validates the knobs.
      service_window_.emplace(hedge.model.target_buckets,
                              hedge.model.max_span_ms);
      model_work_ms_.assign(static_cast<std::size_t>(g_.NumDecisions()), 0.0);
      metric_model_recomputes_ =
          &telemetry_.metrics.AddCounter("replay.model.recomputes");
      metric_model_fraction_ =
          &telemetry_.metrics.AddGauge("replay.model.hedge_fraction");
      metric_model_target_load_ =
          &telemetry_.metrics.AddGauge("replay.model.target_load");
      metric_model_gain_ =
          &telemetry_.metrics.AddGauge("replay.model.predicted_gain_ms");
    }
  }

  double window_ms() const { return window_ms_; }
  const PolicyConfig& policy() const { return policy_; }
  bool abandonment_on() const { return abandonment_on_; }
  void set_shards(int shards) { out_.stats.shards = shards; }

  /// True when `session_id` quit in an *earlier* analysis window (every
  /// earlier window is merged before the current one routes/builds).
  bool SessionGone(std::uint64_t session_id) const {
    return abandonment_on_ && abandoned_sessions_.count(session_id) > 0;
  }

  void RecordRouted() { ++out_.stats.records; }

  void WindowClosed() {
    ++out_.stats.windows_streamed;
    metric_windows_.Increment();
    ++ctrl_stats_.ticks;
  }

  // Solves one closed group: a pure function of (records, config), so any
  // shard may run it in any order without touching the merged bytes.
  SolvedGroup Solve(const PendingGroup& pg) const {
    SolvedGroup sg;
    sg.window_index = pg.window_index;
    sg.page_index = pg.page_index;
    const QoeModel& qoe = qoe_of_page_(PageTypeFromIndex(pg.page_index));
    sg.max_qoe = qoe.MaxQoe();
    sg.outcomes.reserve(pg.group.records.size());
    // Offered load counts only records whose sessions are still here:
    // abandonment removes a session from downstream window load (its
    // delays were already excluded from the bucketizer at routing time).
    std::size_t live = 0;
    for (const std::uint8_t gone : pg.group.pre_abandoned) {
      if (gone == 0) ++live;
    }
    if (live == 0) {
      // Every record belongs to an abandoned session — nothing to plan.
      for (const TraceRecord* r : pg.group.records) {
        RequestOutcome o;
        o.id = r->request_id;
        o.arrival_ms = r->arrival_ms;
        o.external_delay_ms = r->external_delay_ms;
        o.status = RequestStatus::kAbandoned;
        sg.outcomes.push_back(o);
      }
      return sg;
    }
    const double rps = static_cast<double>(live) / (window_ms_ / 1000.0) *
                       ctrl_.rps_planning_factor;
    PolicyResult pr =
        ComputePolicy(qoe, g_, pg.group.externals, rps, policy_);
    sg.policy_stats = pr.stats;
    // Per-decision mean server delay under the installed split, computed
    // once per decision actually used.
    std::vector<double> mean_delay(
        static_cast<std::size_t>(g_.NumDecisions()), -1.0);
    // Sessions that quit earlier in this same group (record order): their
    // later records cascade to kAbandoned without being served.
    std::unordered_set<std::uint64_t> quit_here;
    for (std::size_t i = 0; i < pg.group.records.size(); ++i) {
      const TraceRecord* r = pg.group.records[i];
      RequestOutcome o;
      o.id = r->request_id;
      o.arrival_ms = r->arrival_ms;
      o.external_delay_ms = r->external_delay_ms;
      if (pg.group.pre_abandoned[i] != 0 ||
          (abandonment_on_ && quit_here.count(r->session_id) > 0)) {
        o.status = RequestStatus::kAbandoned;
        sg.outcomes.push_back(o);
        continue;
      }
      const DecisionTableRow& row = pr.table.LookupRow(r->external_delay_ms);
      const auto d = static_cast<std::size_t>(row.decision);
      if (mean_delay[d] < 0.0) {
        mean_delay[d] =
            g_.DelayDistribution(row.decision, pr.table.load_fractions, rps)
                .Mean();
      }
      o.server_delay_ms = mean_delay[d];
      o.decision = row.decision;
      const double total_delay = r->external_delay_ms + mean_delay[d];
      if (abandonment_on_ &&
          abandonment_.Abandons(r->session_id,
                                qoe.Classify(r->external_delay_ms),
                                total_delay)) {
        // The user quit waiting on this very request: it consumed service
        // (decision and server delay stand) but yields no QoE, and the
        // session is gone from here on.
        o.status = RequestStatus::kAbandoned;
        quit_here.insert(r->session_id);
        sg.newly_abandoned.push_back(r->session_id);
      } else {
        o.qoe = qoe.Qoe(total_delay);
        o.status = RequestStatus::kCompleted;
      }
      sg.outcomes.push_back(o);
    }
    return sg;
  }

  // Folds one solved group into the result. Serial path only, and callers
  // must present groups in ascending (window_index, page_index) order —
  // that ordering is what makes the abandonment set, the model metering,
  // and the aggregates shard-count- and path-invariant.
  void Merge(SolvedGroup& sg) {
    AdvanceModel(static_cast<double>(sg.window_index) * window_ms_);
    ++out_.stats.groups_merged;
    metric_merges_.Increment();
    ++ctrl_stats_.recomputes;
    ctrl_stats_.decisions += sg.outcomes.size();
    ctrl_stats_.observations += sg.outcomes.size();
    ctrl_stats_.last_policy_stats = sg.policy_stats;
    // Quits take effect from the next analysis window on; applying them
    // here, in (window, page) order, is what makes the effect
    // shard-count-invariant.
    for (const std::uint64_t session : sg.newly_abandoned) {
      abandoned_sessions_.insert(session);
      if (metric_abandoned_ != nullptr) metric_abandoned_->Increment();
    }
    // Served-QoE distribution aggregates (summary + per-page-normalized
    // histogram), maintained here on the serial path in both outcome
    // modes so full-volume (aggregate-only) runs still yield a CDF.
    for (const RequestOutcome& o : sg.outcomes) {
      if (!o.Served()) continue;
      out_.qoe_summary.Add(o.qoe);
      const double unit = sg.max_qoe > 0.0 ? o.qoe / sg.max_qoe : 0.0;
      const auto bin = static_cast<std::size_t>(std::clamp(
          static_cast<int>(unit * 100.0), 0,
          static_cast<int>(out_.qoe_histogram.size()) - 1));
      ++out_.qoe_histogram[bin];
      if (model_driven_) {
        // The charged (planned mean) server delay doubles as the model's
        // service-time sample; it includes planned queueing, so the
        // utilization the model sees is biased high — i.e. toward keeping
        // the hedge budget shut, the safe direction for a metered proxy.
        // Work is metered per decision so one saturated decision cannot
        // masquerade as cluster-wide busyness (the clamp in AdvanceModel).
        service_window_->Add(o.server_delay_ms);
        model_work_ms_[static_cast<std::size_t>(o.decision)] +=
            o.server_delay_ms;
      }
    }
    if (config_.keep_outcomes) {
      out_.result.outcomes.insert(out_.result.outcomes.end(),
                                  sg.outcomes.begin(), sg.outcomes.end());
    } else {
      for (const RequestOutcome& o : sg.outcomes) {
        if (!o.Served()) {
          ++abandoned_;  // Only kAbandoned reaches here in this replayer.
          continue;
        }
        sum_qoe_ += o.qoe;
        sum_server_ += o.server_delay_ms;
        ++served_;
        if (!first_seen_) {
          first_seen_ = true;
          first_arrival_ = last_arrival_ = o.arrival_ms;
        }
        first_arrival_ = std::min(first_arrival_, o.arrival_ms);
        last_arrival_ = std::max(last_arrival_, o.arrival_ms);
      }
    }
  }

  ShardedReplayResult Finish(std::size_t arrivals) {
    out_.result.controller_stats = ctrl_stats_;
    out_.result.arrivals = arrivals;
    out_.result.resilience.model_recomputes = model_recomputes_;
    out_.model_prediction = last_prediction_;
    if (config_.keep_outcomes) {
      out_.result.Finalize();
    } else {
      out_.result.completed = served_;
      out_.result.abandoned = abandoned_;
      if (served_ > 0) {
        const auto n = static_cast<double>(served_);
        out_.result.mean_qoe = sum_qoe_ / n;
        out_.result.mean_server_delay_ms = sum_server_ / n;
        out_.result.throughput_rps =
            last_arrival_ > first_arrival_
                ? n / ((last_arrival_ - first_arrival_) / 1000.0)
                : 0.0;
      }
    }
    if (telemetry_.enabled()) out_.result.telemetry = telemetry_.Snapshot();
    return std::move(out_);
  }

 private:
  // Advances the model clock to `now_ms` (an analysis-window start on the
  // merge path), re-deriving the gates at every elapsed model-window
  // boundary that has enough samples. Thin windows keep accumulating into
  // the same summary instead of deriving gates from noise — the same
  // contract as db::ReadExecutor::MaybeRecomputeBudgets.
  void AdvanceModel(double now_ms) {
    if (!model_driven_) return;
    const resilience::CloningModelConfig& model = cloning_model_->config();
    if (!model_clock_seeded_) {
      model_clock_seeded_ = true;
      model_reset_ms_ = now_ms;
      next_model_recompute_ms_ = now_ms + model.window_ms;
      return;
    }
    while (now_ms >= next_model_recompute_ms_) {
      const double boundary = next_model_recompute_ms_;
      next_model_recompute_ms_ += model.window_ms;
      if (service_window_->sample_count() <
          static_cast<std::size_t>(model.min_samples)) {
        continue;
      }
      // Busy-fraction estimate: each decision target's charged work since
      // the last recompute is a busy-period integral for that target, and
      // no target can be more than fully busy — hence the per-decision
      // min(1, work/elapsed) clamp before averaging. The old scalar sum
      // let one saturated decision push the cluster-wide figure past its
      // own share (even past 1.0), shutting the hedge budget while the
      // other decisions sat idle and could have absorbed clones.
      const double elapsed = boundary - model_reset_ms_;
      double utilization = 0.0;
      for (const double work_ms : model_work_ms_) {
        utilization += std::min(1.0, work_ms / elapsed);
      }
      utilization /= static_cast<double>(g_.NumDecisions());
      last_prediction_ = cloning_model_->Predict(*service_window_, utilization);
      ++model_recomputes_;
      if (metric_model_recomputes_ != nullptr) {
        metric_model_recomputes_->Increment();
        metric_model_fraction_->Set(last_prediction_.max_hedge_fraction);
        metric_model_target_load_->Set(last_prediction_.max_target_load);
        metric_model_gain_->Set(last_prediction_.predicted_gain_ms);
      }
      service_window_.emplace(model.target_buckets, model.max_span_ms);
      std::fill(model_work_ms_.begin(), model_work_ms_.end(), 0.0);
      model_reset_ms_ = boundary;
    }
  }

  const QoeModelSelector& qoe_of_page_;
  const ServerDelayModel& g_;
  const ShardedReplayConfig& config_;
  const ControllerConfig& ctrl_;
  double window_ms_;
  PolicyConfig policy_;
  AbandonmentModel abandonment_;
  bool abandonment_on_ = false;
  std::unordered_set<std::uint64_t> abandoned_sessions_;

  obs::Telemetry telemetry_;
  obs::Counter& metric_merges_;
  obs::Counter& metric_windows_;
  obs::Counter* metric_abandoned_ = nullptr;

  bool model_driven_ = false;
  std::optional<resilience::CloningModel> cloning_model_;
  std::optional<Bucketizer> service_window_;
  bool model_clock_seeded_ = false;
  double model_reset_ms_ = 0.0;
  double next_model_recompute_ms_ = 0.0;
  // Charged (planned mean) server-delay work per decision target since the
  // last recompute, in ms of busy time.
  std::vector<double> model_work_ms_;
  std::uint64_t model_recomputes_ = 0;
  resilience::CloningPrediction last_prediction_;
  obs::Counter* metric_model_recomputes_ = nullptr;
  obs::Gauge* metric_model_fraction_ = nullptr;
  obs::Gauge* metric_model_target_load_ = nullptr;
  obs::Gauge* metric_model_gain_ = nullptr;

  ShardedReplayResult out_;
  ControllerStats ctrl_stats_;

  // Aggregate-only accumulators (keep_outcomes == false).
  double sum_qoe_ = 0.0;
  double sum_server_ = 0.0;
  std::uint64_t served_ = 0;
  std::uint64_t abandoned_ = 0;
  bool first_seen_ = false;
  double first_arrival_ = 0.0;
  double last_arrival_ = 0.0;
};

}  // namespace

ShardedReplayResult ReplayTraceSharded(std::span<const TraceRecord> records,
                                       const QoeModelSelector& qoe_of_page,
                                       const ServerDelayModel& g,
                                       const ShardedReplayConfig& config) {
  const ControllerConfig& ctrl = config.common.controller;
  if (ctrl.shards < 0) {
    throw std::invalid_argument("ReplayTraceSharded: negative shard count");
  }
  const int shards =
      ctrl.shards == 0 ? ThreadPool::DefaultWorkers() : ctrl.shards;

  ReplayEngine engine(qoe_of_page, g, config, "ReplayTraceSharded");
  engine.set_shards(shards);

  // Per-shard state, touched only by the owning shard during a flush and by
  // the (serial) router between flushes.
  std::vector<std::map<std::pair<std::int64_t, int>, OpenGroup>> open(
      static_cast<std::size_t>(shards));
  std::vector<std::vector<PendingGroup>> pending(
      static_cast<std::size_t>(shards));
  std::vector<std::vector<SolvedGroup>> solved(
      static_cast<std::size_t>(shards));

  std::unique_ptr<ThreadPool> pool;
  if (shards > 1) {
    pool = std::make_unique<ThreadPool>(
        std::min(shards, ThreadPool::DefaultWorkers()));
  }

  // Solves every pending group (fanned out one shard per index) and merges
  // the results serially in ascending (window, page) order. Closes arrive
  // in ascending window order and a window's groups close atomically, so
  // per-flush sorted merges concatenate into the globally sorted order —
  // flush batching cannot reach the output bytes (docs/SCALE.md).
  const auto flush = [&] {
    std::size_t total = 0;
    for (const auto& p : pending) total += p.size();
    if (total == 0) return;
    const auto run_shard = [&](std::size_t s) {
      solved[s].clear();
      solved[s].reserve(pending[s].size());
      for (const PendingGroup& pg : pending[s]) {
        solved[s].push_back(engine.Solve(pg));
      }
    };
    if (pool != nullptr) {
      pool->ParallelFor(static_cast<std::size_t>(shards), run_shard);
    } else {
      run_shard(0);
    }
    std::vector<SolvedGroup*> order;
    order.reserve(total);
    for (auto& shard_solved : solved) {
      for (SolvedGroup& sg : shard_solved) order.push_back(&sg);
    }
    std::sort(order.begin(), order.end(),
              [](const SolvedGroup* a, const SolvedGroup* b) {
                return std::tie(a->window_index, a->page_index) <
                       std::tie(b->window_index, b->page_index);
              });
    for (SolvedGroup* sg : order) engine.Merge(*sg);
    for (auto& p : pending) p.clear();
  };

  // Abandonment requires every window's quits to be merged into the global
  // session set before the next window's records route, so the model forces
  // a flush at each window close. (A shard-dependent threshold would also
  // make *when* quits land depend on the shard count.) Without abandonment
  // the batching threshold is free to amortize pool dispatch.
  const auto flush_threshold =
      engine.abandonment_on()
          ? std::size_t{1}
          : static_cast<std::size_t>(std::max(4, 2 * shards));

  StreamByWindow(
      records, engine.window_ms(),
      [&](const WindowKey& key, const TraceRecord& r) {
        const int page = Index(key.page_type);
        const auto shard = static_cast<std::size_t>(
            (key.window_index * kNumPageTypes + page) %
            static_cast<std::int64_t>(shards));
        const auto [it, inserted] = open[shard].try_emplace(
            std::pair<std::int64_t, int>(key.window_index, page),
            engine.policy().target_buckets,
            engine.policy().max_bucket_span_ms);
        // A session that abandoned in an earlier window contributes no
        // load: its record is routed (for the conservation count and its
        // kAbandoned outcome) but kept out of the group's bucketizer.
        const bool gone = engine.SessionGone(r.session_id);
        if (!gone) it->second.externals.Add(r.external_delay_ms);
        it->second.records.push_back(&r);
        it->second.pre_abandoned.push_back(gone ? 1 : 0);
        engine.RecordRouted();
      },
      [&](std::int64_t) {
        engine.WindowClosed();
        // Every group still open belongs to the index being closed (records
        // are sorted and all earlier indices were closed already); hand them
        // to their shards' pending queues.
        for (std::size_t s = 0; s < open.size(); ++s) {
          for (auto it = open[s].begin(); it != open[s].end();
               it = open[s].erase(it)) {
            pending[s].push_back(PendingGroup{it->first.first,
                                              it->first.second,
                                              std::move(it->second)});
          }
        }
        std::size_t total = 0;
        for (const auto& p : pending) total += p.size();
        if (total >= flush_threshold) flush();
      });
  flush();
  return engine.Finish(records.size());
}

ShardedReplayResult ReplayTrace(std::span<const TraceRecord> records,
                                const QoeModelSelector& qoe_of_page,
                                const ServerDelayModel& g,
                                const ShardedReplayConfig& config) {
  ReplayEngine engine(qoe_of_page, g, config, "ReplayTrace");
  engine.set_shards(1);  // The batch path is inherently serial.

  // Batch grouping: the whole day's (window, page) record lists are built
  // up front — peak memory O(day), the bound the sharded path exists to
  // beat. Only record *pointers* are grouped here; each group's bucketizer
  // and pre-abandoned flags are built when its window comes up below, after
  // every earlier window's quits merged — the same visibility the sharded
  // router has, where all earlier windows flushed before a record routes.
  std::map<std::int64_t, std::map<int, std::vector<const TraceRecord*>>> day;
  StreamByWindow(
      records, engine.window_ms(),
      [&](const WindowKey& key, const TraceRecord& r) {
        day[key.window_index][Index(key.page_type)].push_back(&r);
        engine.RecordRouted();
      },
      [&](std::int64_t) { engine.WindowClosed(); });

  for (auto& [window_index, pages] : day) {
    // Build and solve every group of this window before merging any of
    // them: a quit inside (w, p0) must not reach (w, p1)'s load — quits
    // take effect from the next analysis window on.
    std::vector<SolvedGroup> solved;
    solved.reserve(pages.size());
    for (auto& [page, group_records] : pages) {
      PendingGroup pg{window_index, page,
                      OpenGroup(engine.policy().target_buckets,
                                engine.policy().max_bucket_span_ms)};
      for (const TraceRecord* r : group_records) {
        const bool gone = engine.SessionGone(r->session_id);
        if (!gone) pg.group.externals.Add(r->external_delay_ms);
        pg.group.records.push_back(r);
        pg.group.pre_abandoned.push_back(gone ? 1 : 0);
      }
      solved.push_back(engine.Solve(pg));
    }
    for (SolvedGroup& sg : solved) engine.Merge(sg);
  }
  return engine.Finish(records.size());
}

}  // namespace e2e
