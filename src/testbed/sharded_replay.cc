#include "testbed/sharded_replay.h"

#include <algorithm>
#include <cstddef>
#include <map>
#include <memory>
#include <stdexcept>
#include <tuple>
#include <utility>
#include <vector>

#include "core/policy.h"
#include "obs/export.h"
#include "stats/bucketizer.h"
#include "trace/windows.h"
#include "util/clock.h"
#include "util/thread_pool.h"
#include "util/types.h"

namespace e2e {
namespace {

// One still-open (page, window) group: delays accumulate into the streaming
// bucketizer as records arrive; the records themselves are needed again at
// solve time for per-request decisions.
struct OpenGroup {
  OpenGroup(int target_buckets, double max_span)
      : externals(target_buckets, max_span) {}

  Bucketizer externals;
  std::vector<const TraceRecord*> records;
};

// A closed group queued on its shard, waiting for the next flush.
struct PendingGroup {
  std::int64_t window_index = 0;
  int page_index = 0;
  OpenGroup group;
};

// A solved group: the shard's output slot, merged serially in
// (window_index, page_index) order.
struct SolvedGroup {
  std::int64_t window_index = 0;
  int page_index = 0;
  std::vector<RequestOutcome> outcomes;
  PolicyStats policy_stats;
};

}  // namespace

ShardedReplayResult ReplayTraceSharded(std::span<const TraceRecord> records,
                                       const QoeModelSelector& qoe_of_page,
                                       const ServerDelayModel& g,
                                       const ShardedReplayConfig& config) {
  RequireNoFaultPlan(config.common, "ReplayTraceSharded");
  const ControllerConfig& ctrl = config.common.controller;
  if (ctrl.shards < 0) {
    throw std::invalid_argument("ReplayTraceSharded: negative shard count");
  }
  const int shards =
      ctrl.shards == 0 ? ThreadPool::DefaultWorkers() : ctrl.shards;
  const double window_ms = ctrl.external.window_ms;

  // Groups are the unit of parallelism here; the per-group hill climb runs
  // serially on its shard's thread (nesting pools would oversubscribe and
  // buys nothing at this granularity).
  PolicyConfig policy = ctrl.policy;
  policy.parallel_workers = 1;

  ShardedReplayResult out;
  out.stats.shards = shards;

  // Telemetry on the frozen virtual clock: counters are bumped only on the
  // serial routing/merge paths, so exports are shard-count-invariant.
  obs::Telemetry telemetry(config.common.collect_telemetry,
                           &VirtualClock::Frozen());
  obs::Counter& metric_merges =
      telemetry.metrics.AddCounter("controller.shard_merges");
  obs::Counter& metric_windows =
      telemetry.metrics.AddCounter("controller.windows_streamed");

  // Per-shard state, touched only by the owning shard during a flush and by
  // the (serial) router between flushes.
  std::vector<std::map<std::pair<std::int64_t, int>, OpenGroup>> open(
      static_cast<std::size_t>(shards));
  std::vector<std::vector<PendingGroup>> pending(
      static_cast<std::size_t>(shards));
  std::vector<std::vector<SolvedGroup>> solved(
      static_cast<std::size_t>(shards));

  std::unique_ptr<ThreadPool> pool;
  if (shards > 1) {
    pool = std::make_unique<ThreadPool>(
        std::min(shards, ThreadPool::DefaultWorkers()));
  }

  ControllerStats ctrl_stats;

  // Aggregate-only accumulators (keep_outcomes == false).
  double sum_qoe = 0.0;
  double sum_server = 0.0;
  std::uint64_t served = 0;
  bool first_seen = false;
  double first_arrival = 0.0;
  double last_arrival = 0.0;

  // Solves one closed group: a pure function of (records, config), so any
  // shard may run it in any order without touching the merged bytes.
  const auto solve = [&](const PendingGroup& pg) {
    SolvedGroup sg;
    sg.window_index = pg.window_index;
    sg.page_index = pg.page_index;
    const QoeModel& qoe = qoe_of_page(PageTypeFromIndex(pg.page_index));
    const auto n = static_cast<double>(pg.group.records.size());
    const double rps = n / (window_ms / 1000.0) * ctrl.rps_planning_factor;
    PolicyResult pr = ComputePolicy(qoe, g, pg.group.externals, rps, policy);
    sg.policy_stats = pr.stats;
    // Per-decision mean server delay under the installed split, computed
    // once per decision actually used.
    std::vector<double> mean_delay(
        static_cast<std::size_t>(g.NumDecisions()), -1.0);
    sg.outcomes.reserve(pg.group.records.size());
    for (const TraceRecord* r : pg.group.records) {
      const DecisionTableRow& row = pr.table.LookupRow(r->external_delay_ms);
      const auto d = static_cast<std::size_t>(row.decision);
      if (mean_delay[d] < 0.0) {
        mean_delay[d] =
            g.DelayDistribution(row.decision, pr.table.load_fractions, rps)
                .Mean();
      }
      RequestOutcome o;
      o.id = r->request_id;
      o.arrival_ms = r->arrival_ms;
      o.external_delay_ms = r->external_delay_ms;
      o.server_delay_ms = mean_delay[d];
      o.qoe = qoe.Qoe(r->external_delay_ms + mean_delay[d]);
      o.decision = row.decision;
      o.status = RequestStatus::kCompleted;
      sg.outcomes.push_back(o);
    }
    return sg;
  };

  // Solves every pending group (fanned out one shard per index) and merges
  // the results serially in ascending (window, page) order. Closes arrive
  // in ascending window order and a window's groups close atomically, so
  // per-flush sorted merges concatenate into the globally sorted order —
  // flush batching cannot reach the output bytes (docs/SCALE.md).
  const auto flush = [&] {
    std::size_t total = 0;
    for (const auto& p : pending) total += p.size();
    if (total == 0) return;
    const auto run_shard = [&](std::size_t s) {
      solved[s].clear();
      solved[s].reserve(pending[s].size());
      for (const PendingGroup& pg : pending[s]) {
        solved[s].push_back(solve(pg));
      }
    };
    if (pool != nullptr) {
      pool->ParallelFor(static_cast<std::size_t>(shards), run_shard);
    } else {
      run_shard(0);
    }
    std::vector<SolvedGroup*> order;
    order.reserve(total);
    for (auto& shard_solved : solved) {
      for (SolvedGroup& sg : shard_solved) order.push_back(&sg);
    }
    std::sort(order.begin(), order.end(),
              [](const SolvedGroup* a, const SolvedGroup* b) {
                return std::tie(a->window_index, a->page_index) <
                       std::tie(b->window_index, b->page_index);
              });
    for (SolvedGroup* sg : order) {
      ++out.stats.groups_merged;
      metric_merges.Increment();
      ++ctrl_stats.recomputes;
      ctrl_stats.decisions += sg->outcomes.size();
      ctrl_stats.observations += sg->outcomes.size();
      ctrl_stats.last_policy_stats = sg->policy_stats;
      if (config.keep_outcomes) {
        out.result.outcomes.insert(out.result.outcomes.end(),
                                   sg->outcomes.begin(), sg->outcomes.end());
      } else {
        for (const RequestOutcome& o : sg->outcomes) {
          sum_qoe += o.qoe;
          sum_server += o.server_delay_ms;
          ++served;
          if (!first_seen) {
            first_seen = true;
            first_arrival = last_arrival = o.arrival_ms;
          }
          first_arrival = std::min(first_arrival, o.arrival_ms);
          last_arrival = std::max(last_arrival, o.arrival_ms);
        }
      }
    }
    for (auto& p : pending) p.clear();
  };

  const auto flush_threshold =
      static_cast<std::size_t>(std::max(4, 2 * shards));

  StreamByWindow(
      records, window_ms,
      [&](const WindowKey& key, const TraceRecord& r) {
        const int page = Index(key.page_type);
        const auto shard = static_cast<std::size_t>(
            (key.window_index * kNumPageTypes + page) %
            static_cast<std::int64_t>(shards));
        const auto [it, inserted] = open[shard].try_emplace(
            std::pair<std::int64_t, int>(key.window_index, page),
            policy.target_buckets, policy.max_bucket_span_ms);
        it->second.externals.Add(r.external_delay_ms);
        it->second.records.push_back(&r);
        ++out.stats.records;
      },
      [&](std::int64_t) {
        ++out.stats.windows_streamed;
        metric_windows.Increment();
        ++ctrl_stats.ticks;
        // Every group still open belongs to the index being closed (records
        // are sorted and all earlier indices were closed already); hand them
        // to their shards' pending queues.
        for (std::size_t s = 0; s < open.size(); ++s) {
          for (auto it = open[s].begin(); it != open[s].end();
               it = open[s].erase(it)) {
            pending[s].push_back(PendingGroup{it->first.first,
                                              it->first.second,
                                              std::move(it->second)});
          }
        }
        std::size_t total = 0;
        for (const auto& p : pending) total += p.size();
        if (total >= flush_threshold) flush();
      });
  flush();

  out.result.controller_stats = ctrl_stats;
  out.result.arrivals = out.stats.records;
  if (config.keep_outcomes) {
    out.result.Finalize();
  } else {
    out.result.completed = served;
    if (served > 0) {
      const auto n = static_cast<double>(served);
      out.result.mean_qoe = sum_qoe / n;
      out.result.mean_server_delay_ms = sum_server / n;
      out.result.throughput_rps =
          last_arrival > first_arrival
              ? n / ((last_arrival - first_arrival) / 1000.0)
              : 0.0;
    }
  }
  if (telemetry.enabled()) out.result.telemetry = telemetry.Snapshot();
  return out;
}

}  // namespace e2e
