#include "testbed/sharded_replay.h"

#include <algorithm>
#include <cstddef>
#include <map>
#include <memory>
#include <stdexcept>
#include <tuple>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/policy.h"
#include "obs/export.h"
#include "stats/bucketizer.h"
#include "trace/windows.h"
#include "util/clock.h"
#include "util/thread_pool.h"
#include "util/types.h"

namespace e2e {
namespace {

// One still-open (page, window) group: delays accumulate into the streaming
// bucketizer as records arrive; the records themselves are needed again at
// solve time for per-request decisions.
struct OpenGroup {
  OpenGroup(int target_buckets, double max_span)
      : externals(target_buckets, max_span) {}

  Bucketizer externals;
  std::vector<const TraceRecord*> records;
  /// Parallel to `records`: set when the record's session had already
  /// abandoned before this window, so the record was excluded from
  /// `externals` at routing time (always false with abandonment off).
  std::vector<std::uint8_t> pre_abandoned;
};

// A closed group queued on its shard, waiting for the next flush.
struct PendingGroup {
  std::int64_t window_index = 0;
  int page_index = 0;
  OpenGroup group;
};

// A solved group: the shard's output slot, merged serially in
// (window_index, page_index) order.
struct SolvedGroup {
  std::int64_t window_index = 0;
  int page_index = 0;
  std::vector<RequestOutcome> outcomes;
  PolicyStats policy_stats;
  /// Page model's MaxQoe(), for per-page histogram normalization.
  double max_qoe = 1.0;
  /// Sessions that quit inside this group, in record order. Applied to the
  /// global abandoned-session set only during the serial merge, so solve()
  /// stays a pure function and shards never race on shared state.
  std::vector<std::uint64_t> newly_abandoned;
};

}  // namespace

ShardedReplayResult ReplayTraceSharded(std::span<const TraceRecord> records,
                                       const QoeModelSelector& qoe_of_page,
                                       const ServerDelayModel& g,
                                       const ShardedReplayConfig& config) {
  RequireNoFaultPlan(config.common, "ReplayTraceSharded");
  const ControllerConfig& ctrl = config.common.controller;
  if (ctrl.shards < 0) {
    throw std::invalid_argument("ReplayTraceSharded: negative shard count");
  }
  const int shards =
      ctrl.shards == 0 ? ThreadPool::DefaultWorkers() : ctrl.shards;
  const double window_ms = ctrl.external.window_ms;

  // Groups are the unit of parallelism here; the per-group hill climb runs
  // serially on its shard's thread (nesting pools would oversubscribe and
  // buys nothing at this granularity).
  PolicyConfig policy = ctrl.policy;
  policy.parallel_workers = 1;

  ShardedReplayResult out;
  out.stats.shards = shards;

  // Telemetry on the frozen virtual clock: counters are bumped only on the
  // serial routing/merge paths, so exports are shard-count-invariant.
  obs::Telemetry telemetry(config.common.collect_telemetry,
                           &VirtualClock::Frozen());
  obs::Counter& metric_merges =
      telemetry.metrics.AddCounter("controller.shard_merges");
  obs::Counter& metric_windows =
      telemetry.metrics.AddCounter("controller.windows_streamed");

  // Session abandonment (qoe/abandonment.h). The global session set is
  // read on the serial routing path (membership only — never iterated) and
  // written on the serial merge path, so shard threads never touch it. The
  // counter is registered only when the model is live, keeping stock runs'
  // telemetry exports byte-identical.
  const AbandonmentModel abandonment(config.common.abandonment);
  const bool abandonment_on = abandonment.enabled();
  std::unordered_set<std::uint64_t> abandoned_sessions;
  obs::Counter* metric_abandoned =
      abandonment_on ? &telemetry.metrics.AddCounter("replay.abandoned")
                     : nullptr;

  // Per-shard state, touched only by the owning shard during a flush and by
  // the (serial) router between flushes.
  std::vector<std::map<std::pair<std::int64_t, int>, OpenGroup>> open(
      static_cast<std::size_t>(shards));
  std::vector<std::vector<PendingGroup>> pending(
      static_cast<std::size_t>(shards));
  std::vector<std::vector<SolvedGroup>> solved(
      static_cast<std::size_t>(shards));

  std::unique_ptr<ThreadPool> pool;
  if (shards > 1) {
    pool = std::make_unique<ThreadPool>(
        std::min(shards, ThreadPool::DefaultWorkers()));
  }

  ControllerStats ctrl_stats;

  // Aggregate-only accumulators (keep_outcomes == false).
  double sum_qoe = 0.0;
  double sum_server = 0.0;
  std::uint64_t served = 0;
  std::uint64_t abandoned = 0;
  bool first_seen = false;
  double first_arrival = 0.0;
  double last_arrival = 0.0;

  // Solves one closed group: a pure function of (records, config), so any
  // shard may run it in any order without touching the merged bytes.
  const auto solve = [&](const PendingGroup& pg) {
    SolvedGroup sg;
    sg.window_index = pg.window_index;
    sg.page_index = pg.page_index;
    const QoeModel& qoe = qoe_of_page(PageTypeFromIndex(pg.page_index));
    sg.max_qoe = qoe.MaxQoe();
    sg.outcomes.reserve(pg.group.records.size());
    // Offered load counts only records whose sessions are still here:
    // abandonment removes a session from downstream window load (its
    // delays were already excluded from the bucketizer at routing time).
    std::size_t live = 0;
    for (const std::uint8_t gone : pg.group.pre_abandoned) {
      if (gone == 0) ++live;
    }
    if (live == 0) {
      // Every record belongs to an abandoned session — nothing to plan.
      for (const TraceRecord* r : pg.group.records) {
        RequestOutcome o;
        o.id = r->request_id;
        o.arrival_ms = r->arrival_ms;
        o.external_delay_ms = r->external_delay_ms;
        o.status = RequestStatus::kAbandoned;
        sg.outcomes.push_back(o);
      }
      return sg;
    }
    const double rps = static_cast<double>(live) / (window_ms / 1000.0) *
                       ctrl.rps_planning_factor;
    PolicyResult pr = ComputePolicy(qoe, g, pg.group.externals, rps, policy);
    sg.policy_stats = pr.stats;
    // Per-decision mean server delay under the installed split, computed
    // once per decision actually used.
    std::vector<double> mean_delay(
        static_cast<std::size_t>(g.NumDecisions()), -1.0);
    // Sessions that quit earlier in this same group (record order): their
    // later records cascade to kAbandoned without being served.
    std::unordered_set<std::uint64_t> quit_here;
    for (std::size_t i = 0; i < pg.group.records.size(); ++i) {
      const TraceRecord* r = pg.group.records[i];
      RequestOutcome o;
      o.id = r->request_id;
      o.arrival_ms = r->arrival_ms;
      o.external_delay_ms = r->external_delay_ms;
      if (pg.group.pre_abandoned[i] != 0 ||
          (abandonment_on && quit_here.count(r->session_id) > 0)) {
        o.status = RequestStatus::kAbandoned;
        sg.outcomes.push_back(o);
        continue;
      }
      const DecisionTableRow& row = pr.table.LookupRow(r->external_delay_ms);
      const auto d = static_cast<std::size_t>(row.decision);
      if (mean_delay[d] < 0.0) {
        mean_delay[d] =
            g.DelayDistribution(row.decision, pr.table.load_fractions, rps)
                .Mean();
      }
      o.server_delay_ms = mean_delay[d];
      o.decision = row.decision;
      const double total_delay = r->external_delay_ms + mean_delay[d];
      if (abandonment_on &&
          abandonment.Abandons(r->session_id,
                               qoe.Classify(r->external_delay_ms),
                               total_delay)) {
        // The user quit waiting on this very request: it consumed service
        // (decision and server delay stand) but yields no QoE, and the
        // session is gone from here on.
        o.status = RequestStatus::kAbandoned;
        quit_here.insert(r->session_id);
        sg.newly_abandoned.push_back(r->session_id);
      } else {
        o.qoe = qoe.Qoe(total_delay);
        o.status = RequestStatus::kCompleted;
      }
      sg.outcomes.push_back(o);
    }
    return sg;
  };

  // Solves every pending group (fanned out one shard per index) and merges
  // the results serially in ascending (window, page) order. Closes arrive
  // in ascending window order and a window's groups close atomically, so
  // per-flush sorted merges concatenate into the globally sorted order —
  // flush batching cannot reach the output bytes (docs/SCALE.md).
  const auto flush = [&] {
    std::size_t total = 0;
    for (const auto& p : pending) total += p.size();
    if (total == 0) return;
    const auto run_shard = [&](std::size_t s) {
      solved[s].clear();
      solved[s].reserve(pending[s].size());
      for (const PendingGroup& pg : pending[s]) {
        solved[s].push_back(solve(pg));
      }
    };
    if (pool != nullptr) {
      pool->ParallelFor(static_cast<std::size_t>(shards), run_shard);
    } else {
      run_shard(0);
    }
    std::vector<SolvedGroup*> order;
    order.reserve(total);
    for (auto& shard_solved : solved) {
      for (SolvedGroup& sg : shard_solved) order.push_back(&sg);
    }
    std::sort(order.begin(), order.end(),
              [](const SolvedGroup* a, const SolvedGroup* b) {
                return std::tie(a->window_index, a->page_index) <
                       std::tie(b->window_index, b->page_index);
              });
    for (SolvedGroup* sg : order) {
      ++out.stats.groups_merged;
      metric_merges.Increment();
      ++ctrl_stats.recomputes;
      ctrl_stats.decisions += sg->outcomes.size();
      ctrl_stats.observations += sg->outcomes.size();
      ctrl_stats.last_policy_stats = sg->policy_stats;
      // Quits take effect from the next analysis window on; applying them
      // here, in (window, page) order, is what makes the effect
      // shard-count-invariant.
      for (const std::uint64_t session : sg->newly_abandoned) {
        abandoned_sessions.insert(session);
        if (metric_abandoned != nullptr) metric_abandoned->Increment();
      }
      // Served-QoE distribution aggregates (summary + per-page-normalized
      // histogram), maintained here on the serial path in both outcome
      // modes so full-volume (aggregate-only) runs still yield a CDF.
      for (const RequestOutcome& o : sg->outcomes) {
        if (!o.Served()) continue;
        out.qoe_summary.Add(o.qoe);
        const double unit = sg->max_qoe > 0.0 ? o.qoe / sg->max_qoe : 0.0;
        const auto bin = static_cast<std::size_t>(std::clamp(
            static_cast<int>(unit * 100.0), 0,
            static_cast<int>(out.qoe_histogram.size()) - 1));
        ++out.qoe_histogram[bin];
      }
      if (config.keep_outcomes) {
        out.result.outcomes.insert(out.result.outcomes.end(),
                                   sg->outcomes.begin(), sg->outcomes.end());
      } else {
        for (const RequestOutcome& o : sg->outcomes) {
          if (!o.Served()) {
            ++abandoned;  // Only kAbandoned reaches here in this replayer.
            continue;
          }
          sum_qoe += o.qoe;
          sum_server += o.server_delay_ms;
          ++served;
          if (!first_seen) {
            first_seen = true;
            first_arrival = last_arrival = o.arrival_ms;
          }
          first_arrival = std::min(first_arrival, o.arrival_ms);
          last_arrival = std::max(last_arrival, o.arrival_ms);
        }
      }
    }
    for (auto& p : pending) p.clear();
  };

  // Abandonment requires every window's quits to be merged into the global
  // session set before the next window's records route, so the model forces
  // a flush at each window close. (A shard-dependent threshold would also
  // make *when* quits land depend on the shard count.) Without abandonment
  // the batching threshold is free to amortize pool dispatch.
  const auto flush_threshold =
      abandonment_on ? std::size_t{1}
                     : static_cast<std::size_t>(std::max(4, 2 * shards));

  StreamByWindow(
      records, window_ms,
      [&](const WindowKey& key, const TraceRecord& r) {
        const int page = Index(key.page_type);
        const auto shard = static_cast<std::size_t>(
            (key.window_index * kNumPageTypes + page) %
            static_cast<std::int64_t>(shards));
        const auto [it, inserted] = open[shard].try_emplace(
            std::pair<std::int64_t, int>(key.window_index, page),
            policy.target_buckets, policy.max_bucket_span_ms);
        // A session that abandoned in an earlier window contributes no
        // load: its record is routed (for the conservation count and its
        // kAbandoned outcome) but kept out of the group's bucketizer.
        const bool gone = abandonment_on &&
                          abandoned_sessions.count(r.session_id) > 0;
        if (!gone) it->second.externals.Add(r.external_delay_ms);
        it->second.records.push_back(&r);
        it->second.pre_abandoned.push_back(gone ? 1 : 0);
        ++out.stats.records;
      },
      [&](std::int64_t) {
        ++out.stats.windows_streamed;
        metric_windows.Increment();
        ++ctrl_stats.ticks;
        // Every group still open belongs to the index being closed (records
        // are sorted and all earlier indices were closed already); hand them
        // to their shards' pending queues.
        for (std::size_t s = 0; s < open.size(); ++s) {
          for (auto it = open[s].begin(); it != open[s].end();
               it = open[s].erase(it)) {
            pending[s].push_back(PendingGroup{it->first.first,
                                              it->first.second,
                                              std::move(it->second)});
          }
        }
        std::size_t total = 0;
        for (const auto& p : pending) total += p.size();
        if (total >= flush_threshold) flush();
      });
  flush();

  out.result.controller_stats = ctrl_stats;
  out.result.arrivals = out.stats.records;
  if (config.keep_outcomes) {
    out.result.Finalize();
  } else {
    out.result.completed = served;
    out.result.abandoned = abandoned;
    if (served > 0) {
      const auto n = static_cast<double>(served);
      out.result.mean_qoe = sum_qoe / n;
      out.result.mean_server_delay_ms = sum_server / n;
      out.result.throughput_rps =
          last_arrival > first_arrival
              ? n / ((last_arrival - first_arrival) / 1000.0)
              : 0.0;
    }
  }
  if (telemetry.enabled()) out.result.telemetry = telemetry.Snapshot();
  return out;
}

}  // namespace e2e
