#include "testbed/adversary_harness.h"

#include <algorithm>
#include <cmath>

#include "qoe/sigmoid_model.h"
#include "testbed/workloads.h"

namespace e2e {
namespace {

const SigmoidQoeModel& HarnessQoe() {
  static const SigmoidQoeModel model = SigmoidQoeModel::TraceTimeOnSite();
  return model;
}

}  // namespace

AdversaryHarness::AdversaryHarness(AdversaryHarnessConfig config)
    : config_(config) {
  SyntheticWorkloadParams params;
  params.num_requests = config_.requests;
  params.seed = config_.workload_seed;
  params.rps = config_.rps;
  records_ = MakeSyntheticWorkload(params);
  baseline_qoe_ = Run(fault::FaultPlan{}).mean_qoe;
}

DbExperimentConfig AdversaryHarness::ExperimentConfigFor(
    const fault::FaultPlan& plan) const {
  // The small-but-loaded db testbed the resilience property tests use:
  // 3 replicas near their knee, fast controller windows.
  DbExperimentConfig config;
  config.policy = DbPolicy::kE2e;
  config.dataset_keys = 2000;
  config.value_bytes = 16;
  config.range_count = 20;
  config.common.speedup = 1.0;
  config.cluster.replica_groups = 3;
  config.cluster.concurrency_per_replica = 8;
  config.cluster.base_service_ms = 120.0;
  config.cluster.capacity = 8.0;
  config.profile_levels = 12;
  config.profile_max_rps = 60.0;
  config.profile_duration_ms = 15000.0;
  config.common.controller.external.window_ms = 5000.0;
  config.common.controller.external.min_samples = 20;
  config.common.controller.policy.target_buckets = 10;
  config.common.fault_plan = plan;
  config.common.resilience = config_.model_driven
                                 ? resilience::ResilienceConfig::ModelDriven()
                                 : resilience::ResilienceConfig::AllOn();
  // Short replay: shrink the cloning-model window so model-driven gates
  // actually re-derive a few times inside the run.
  config.common.resilience.hedge.model.window_ms = 1000.0;
  config.common.resilience.hedge.model.min_samples = 16;
  return config;
}

ExperimentResult AdversaryHarness::Run(const fault::FaultPlan& plan) const {
  return RunDbExperiment(records_, HarnessQoe(), ExperimentConfigFor(plan));
}

double AdversaryHarness::Regression(const fault::FaultPlan& plan) const {
  return baseline_qoe_ - Run(plan).mean_qoe;
}

fault::AdversaryConfig AdversaryHarness::SearchSpace(std::uint64_t seed,
                                                     int iterations) const {
  fault::AdversaryConfig space;
  space.seed = seed;
  space.iterations = iterations;
  space.warmup = std::max(1, iterations / 4);
  space.time_grid_ms = 500.0;
  // Cover the replay span (arrival-ordered records), snapped up to the
  // grid, plus one cell so faults can outlast the last arrival.
  const double span_ms = records_.empty() ? 0.0 : records_.back().arrival_ms;
  space.horizon_ms =
      (std::ceil(span_ms / space.time_grid_ms) + 1.0) * space.time_grid_ms;
  space.horizon_ms = std::max(space.horizon_ms, 2.0 * space.time_grid_ms);
  space.replicas = 3;
  space.max_chains = 3;
  space.broker_faults = false;
  return space;
}

}  // namespace e2e
