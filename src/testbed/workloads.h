// Workload preparation helpers shared by the benchmark binaries.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/generator.h"
#include "trace/record.h"
#include "util/rng.h"

namespace e2e {

/// Generates the standard one-day trace at the given scale (deterministic).
Trace MakeStandardTrace(double scale, std::uint64_t seed = 1);

/// Extracts one page type's records within an hour-of-day slice
/// [begin_hour, end_hour), arrival-ordered.
std::vector<TraceRecord> HourSlice(const Trace& trace, PageType page,
                                   int begin_hour, int end_hour);

/// Parameters for the Fig. 19 synthetic workload: normal external and
/// server-side delays with controllable moments.
struct SyntheticWorkloadParams {
  std::size_t num_requests = 4000;
  double external_mean_ms = 3800.0;
  double external_cov = 0.55;  ///< stddev / mean.
  double server_mean_ms = 300.0;
  double server_cov = 0.80;
  double rps = 50.0;           ///< Arrival rate (uniform spacing + jitter).
  std::uint64_t seed = 17;
};

/// Generates synthetic records drawing external and server delays from
/// truncated normal distributions (Fig. 19's setup). Page type 1.
std::vector<TraceRecord> MakeSyntheticWorkload(
    const SyntheticWorkloadParams& params);

}  // namespace e2e
