#include "testbed/multi_service.h"

#include <algorithm>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>

#include "obs/export.h"
#include "sim/event_loop.h"
#include "testbed/broker_experiment.h"
#include "trace/replay.h"

namespace e2e {
namespace {

// One service's moving parts.
struct Service {
  std::shared_ptr<broker::TableScheduler> table;
  std::unique_ptr<broker::MessageBroker> broker;
  std::unique_ptr<Controller> controller;
  // Realized mean queueing delay per priority level (EWMA), used to
  // predict the residual delay of a request routed through this service.
  std::vector<double> delay_by_priority;
  double overall_delay_ewma = 0.0;
  bool has_delay = false;

  void RecordDelivery(const broker::Delivery& delivery) {
    constexpr double kAlpha = 0.05;
    if (delay_by_priority.empty()) return;
    auto& slot = delay_by_priority[static_cast<std::size_t>(
        std::min<int>(delivery.priority,
                      static_cast<int>(delay_by_priority.size()) - 1))];
    slot = slot == 0.0 ? delivery.QueueingDelayMs()
                       : (1.0 - kAlpha) * slot +
                             kAlpha * delivery.QueueingDelayMs();
    overall_delay_ewma =
        !has_delay ? delivery.QueueingDelayMs()
                   : (1.0 - kAlpha) * overall_delay_ewma +
                         kAlpha * delivery.QueueingDelayMs();
    has_delay = true;
  }

  // Predicted residual delay for a request with this (raw) external delay:
  // look its priority up in the current table and use that level's realized
  // mean; before any table/history exists, fall back to the overall mean.
  // Non-const: AssignPriority is a mutating interface (schedulers may keep
  // state), though TableScheduler's lookup happens not to mutate.
  double PredictDelayMs(DelayMs raw_external) {
    if (table != nullptr && table->HasTable() &&
        !delay_by_priority.empty()) {
      broker::BrokerView view;
      view.queue_depths.assign(delay_by_priority.size(), 0);
      broker::Message probe;
      probe.external_delay_ms = raw_external;
      const int priority = table->AssignPriority(probe, view);
      const double known = delay_by_priority[static_cast<std::size_t>(
          std::min<int>(priority,
                        static_cast<int>(delay_by_priority.size()) - 1))];
      if (known > 0.0) return known;
    }
    return has_delay ? overall_delay_ewma : 0.0;
  }
};

// Join state for one request: completes when all expected legs confirmed.
struct Join {
  double publish_ms = 0.0;
  DelayMs external_ms = 0.0;
  RequestId id = 0;
  int legs_expected = 1;
  int legs_done = 0;
  DelayMs slowest_leg_ms = 0.0;
};

}  // namespace

ExperimentResult RunMultiServiceExperiment(
    std::span<const TraceRecord> records, const QoeModel& qoe,
    const MultiServiceConfig& config) {
  if (records.empty()) {
    throw std::invalid_argument("RunMultiServiceExperiment: no records");
  }
  RequireNoFaultPlan(config.common, "RunMultiServiceExperiment");
  EventLoop loop;
  const EventLoopClock loop_clock(loop);
  const Clock* profile_clock = ProfileClock(config.common, &loop_clock);
  obs::Telemetry telemetry(config.common.collect_telemetry, &loop_clock);
  if (telemetry.enabled()) loop.AttachMetrics(telemetry.metrics);
  auto qoe_shared = std::shared_ptr<const QoeModel>(&qoe, [](auto*) {});

  Service services[2];
  const broker::BrokerParams* params[2] = {&config.service_a,
                                           &config.service_b};
  for (int s = 0; s < 2; ++s) {
    services[s].delay_by_priority.assign(
        static_cast<std::size_t>(params[s]->priority_levels), 0.0);
    const bool service_uses_e2e =
        config.use_e2e && !(s == 1 && config.service_b_legacy_fifo);
    if (service_uses_e2e) {
      services[s].table = std::make_shared<broker::TableScheduler>(
          std::string("service-") + (s == 0 ? "a" : "b"));
      services[s].broker = std::make_unique<broker::MessageBroker>(
          loop, *params[s], services[s].table);
      services[s].controller = std::make_unique<Controller>(
          std::string("ctrl-") + (s == 0 ? "a" : "b"),
          config.common.controller, qoe_shared,
          BuildBrokerServerModel(*params[s]),
          config.common.seed + static_cast<std::uint64_t>(s), profile_clock);
      if (telemetry.enabled()) {
        services[s].controller->AttachTelemetry(
            telemetry.metrics, &telemetry.tracer,
            std::string("ctrl.service_") + (s == 0 ? "a" : "b"));
      }
    } else {
      services[s].broker = std::make_unique<broker::MessageBroker>(
          loop, *params[s], std::make_shared<broker::FifoScheduler>());
    }
    if (telemetry.enabled()) {
      services[s].broker->AttachMetrics(
          telemetry.metrics,
          std::string("broker.service_") + (s == 0 ? "a" : "b"));
    }
  }

  const auto schedule = BuildReplaySchedule(records, config.common.speedup);
  ExperimentResult result;
  result.outcomes.reserve(schedule.size());
  std::map<RequestId, Join> joins;
  Rng fanout_rng(config.common.seed ^ 0x5AULL);

  auto complete_leg = [&](RequestId id, const broker::Delivery& delivery) {
    auto it = joins.find(id);
    if (it == joins.end()) return;
    Join& join = it->second;
    join.slowest_leg_ms =
        std::max(join.slowest_leg_ms, delivery.QueueingDelayMs());
    if (++join.legs_done < join.legs_expected) return;
    RequestOutcome outcome;
    outcome.id = id;
    outcome.arrival_ms = join.publish_ms;
    outcome.external_delay_ms = join.external_ms;
    outcome.server_delay_ms = join.slowest_leg_ms;  // Aggregation waits.
    outcome.qoe = qoe.Qoe(join.external_ms + join.slowest_leg_ms);
    result.outcomes.push_back(outcome);
    joins.erase(it);
  };

  for (const auto& arrival : schedule) {
    const bool needs_b = fanout_rng.Bernoulli(config.fanout_probability);
    loop.Schedule(arrival.testbed_time_ms, [&, arrival, needs_b]() {
      const TraceRecord& rec = arrival.record;
      Join join;
      join.publish_ms = loop.Now();
      join.external_ms = rec.external_delay_ms;
      join.id = rec.request_id;
      join.legs_expected = needs_b ? 2 : 1;
      joins.emplace(rec.request_id, join);

      const int last_service = needs_b ? 1 : 0;
      for (int s = 0; s <= last_service; ++s) {
        // In dependency-aware mode, the delay service A sees for a request
        // that also needs the slower service B includes B's expected
        // residual delay: if B will hold the request for seconds anyway,
        // A should not spend a fast slot on it (the paper's Fig. 11
        // argument lifted across services).
        DelayMs effective_external = rec.external_delay_ms;
        if (config.mode == CrossServiceMode::kDependencyAware && needs_b) {
          effective_external +=
              services[1 - s].PredictDelayMs(rec.external_delay_ms);
        }
        if (services[s].controller != nullptr) {
          services[s].controller->ObserveArrival(effective_external,
                                                 loop.Now());
        }
        broker::Message message;
        message.id = rec.request_id;
        message.external_delay_ms = effective_external;
        services[s].broker->Publish(
            message, [&, s](const broker::Delivery& delivery) {
              services[s].RecordDelivery(delivery);
              complete_leg(delivery.message.id, delivery);
            });
      }
    });
  }

  const double horizon_ms = schedule.back().testbed_time_ms + 60000.0;
  if (config.use_e2e) {
    for (double t = config.common.tick_interval_ms; t <= horizon_ms;
         t += config.common.tick_interval_ms) {
      loop.Schedule(t, [&]() {
        for (auto& service : services) {
          if (service.controller == nullptr) continue;
          if (service.controller->Tick(loop.Now())) {
            const DecisionTable* table = service.controller->CurrentTable();
            if (table != nullptr) {
              service.table->SetTable(ToSchedulerEntries(*table));
            }
          }
        }
      });
    }
  }

  loop.RunUntil(horizon_ms);
  for (auto& service : services) service.broker->StopConsumers();
  loop.Run();

  for (const auto& service : services) {
    result.service_busy_ms +=
        static_cast<double>(service.broker->delivered_count()) *
        config.service_a.handling_cost_ms;
  }
  if (telemetry.enabled()) result.telemetry = telemetry.Snapshot();
  result.Finalize();
  return result;
}

}  // namespace e2e
