// Frontend web server stage (Fig. 2): the component that measures a
// request's external delay and tags it before forwarding to the
// shared-resource service.
//
// The paper's prototype reads external delays from traces; §9 sketches how
// a deployment would estimate them per request (Timecard's RTT method +
// Mystery Machine's history-trained rendering model, both in src/net).
// This stage wires those estimators into the experiment harness: it
// decomposes each trace record's (ground-truth) external delay into WAN and
// rendering components, simulates what the frontend could actually observe
// about the connection, and produces the estimate the controller consumes.
#pragma once

#include <cstdint>

#include "net/estimator.h"
#include "trace/record.h"
#include "util/rng.h"

namespace e2e {

/// Frontend configuration.
struct FrontendParams {
  /// Instrumented sessions used to train the rendering model before the
  /// experiment starts (Mystery Machine trains on historical traces).
  int render_training_sessions = 2000;
  /// Response payload assumed for the transfer-RTT estimate.
  std::size_t response_bytes = 60000;
  std::uint64_t seed = 311;
};

/// The frontend: decomposes trace externals into ground-truth components
/// and estimates them back from simulated connection observations.
class Frontend {
 public:
  explicit Frontend(FrontendParams params);

  /// Deterministically decomposes a record's external delay into WAN RTTs
  /// and client rendering, with a device class derived from the user id.
  /// The decomposition is exact: truth.TotalMs() == record.external_delay_ms.
  net::ExternalDelayTruth Decompose(const TraceRecord& record) const;

  /// Trains the rendering estimator on `sessions` synthetic instrumented
  /// sessions drawn from the same population as `sample`.
  void TrainRenderModel(std::span<const TraceRecord> sample);

  /// The per-request estimate the frontend would tag the request with.
  DelayMs EstimateExternal(const TraceRecord& record);

  /// Fault injection ("skew est"): a relative bias applied to every
  /// estimate the frontend produces — estimates scale by (1 + bias).
  /// Throws when the bias would make estimates negative (bias < -1).
  void SetEstimateBias(double relative_bias);
  double estimate_bias() const { return estimate_bias_; }

  const net::ExternalDelayEstimator& estimator() const { return estimator_; }

 private:
  FrontendParams params_;
  net::ExternalDelayEstimator estimator_;
  Rng rng_;
  double estimate_bias_ = 0.0;
};

}  // namespace e2e
