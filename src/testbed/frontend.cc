#include "testbed/frontend.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace e2e {
namespace {

// Device class from a stable per-user hash: 55% desktop, 30% high-end
// mobile, 15% low-end mobile.
net::DeviceClass DeviceOf(UserId user) {
  const std::uint64_t h = user * 0x9e3779b97f4a7c15ULL;
  const double u = static_cast<double>(h % 1000) / 1000.0;
  if (u < 0.55) return net::DeviceClass::kDesktop;
  if (u < 0.85) return net::DeviceClass::kMobileHighEnd;
  return net::DeviceClass::kMobileLowEnd;
}

// Rendering share of the external delay by device class.
double RenderShare(net::DeviceClass device) {
  switch (device) {
    case net::DeviceClass::kDesktop:
      return 0.20;
    case net::DeviceClass::kMobileHighEnd:
      return 0.30;
    case net::DeviceClass::kMobileLowEnd:
      return 0.45;
  }
  return 0.25;
}

}  // namespace

Frontend::Frontend(FrontendParams params)
    : params_(params), rng_(params.seed) {}

net::ExternalDelayTruth Frontend::Decompose(const TraceRecord& record) const {
  net::ExternalDelayTruth truth;
  truth.device = DeviceOf(record.user_id);
  const double render_share = RenderShare(truth.device);
  truth.render_ms = record.external_delay_ms * render_share;
  truth.wan_transfer_rtts = 3.0;
  truth.wan_rtt_ms = record.external_delay_ms * (1.0 - render_share) /
                     truth.wan_transfer_rtts;
  return truth;
}

void Frontend::TrainRenderModel(std::span<const TraceRecord> sample) {
  const int budget = std::min<int>(params_.render_training_sessions,
                                   static_cast<int>(sample.size()));
  for (int i = 0; i < budget; ++i) {
    const auto& record = sample[static_cast<std::size_t>(i)];
    const auto truth = Decompose(record);
    // Instrumented sessions report a noisy rendering measurement.
    const double measured =
        truth.render_ms * std::exp(rng_.Normal(0.0, 0.10));
    estimator_.render_estimator().Train(truth.device, measured);
  }
}

DelayMs Frontend::EstimateExternal(const TraceRecord& record) {
  const auto truth = Decompose(record);
  const auto observation =
      net::ObserveConnection(truth, params_.response_bytes, rng_);
  return estimator_.Estimate(observation) * (1.0 + estimate_bias_);
}

void Frontend::SetEstimateBias(double relative_bias) {
  if (relative_bias < -1.0) {
    throw std::invalid_argument("Frontend::SetEstimateBias: bias < -1");
  }
  estimate_bias_ = relative_bias;
}

}  // namespace e2e
