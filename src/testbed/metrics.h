// Shared experiment metric types.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/controller.h"
#include "util/types.h"

namespace e2e {

/// Per-request outcome of an experiment run.
struct RequestOutcome {
  RequestId id = 0;
  double arrival_ms = 0.0;        ///< Testbed arrival time.
  DelayMs external_delay_ms = 0.0;
  DelayMs server_delay_ms = 0.0;  ///< Measured on the testbed.
  double qoe = 0.0;               ///< Q(external + server).
  int decision = -1;              ///< Replica / priority chosen (-1 default).
};

/// Aggregate result of one experiment run.
struct ExperimentResult {
  std::vector<RequestOutcome> outcomes;
  double mean_qoe = 0.0;
  double mean_server_delay_ms = 0.0;
  double throughput_rps = 0.0;
  ControllerStats controller_stats;

  /// Virtual service busy time across all servers (ms) — the testbed's own
  /// resource consumption, for overhead comparisons (Fig. 16).
  double service_busy_ms = 0.0;

  /// Recomputes aggregate fields from `outcomes`.
  void Finalize();
};

/// Relative QoE gain of `treatment` over `baseline` in percent:
/// (Q_t - Q_b) / Q_b * 100 (§7.1's metric).
double QoeGainPercent(double baseline_mean_qoe, double treatment_mean_qoe);

/// Per-request QoE values of a result.
std::vector<double> QoeValues(std::span<const RequestOutcome> outcomes);

}  // namespace e2e
