// Shared experiment metric types.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/controller.h"
#include "fault/plan.h"
#include "obs/export.h"
#include "util/types.h"

namespace e2e {

/// How a request left the testbed. Completed and failed-over requests were
/// served (failed-over ones were rerouted around a partitioned replica or
/// won by a hedged clone); dropped requests were lost to an injected broker
/// fault; shed requests were refused by QoE-aware admission control under
/// overload; abandoned requests belong to sessions whose user quit after
/// total delay crossed their patience threshold (qoe/abandonment.h).
/// Together the five statuses account for every arrival — the conservation
/// invariant the fault, resilience, and objective property tests assert.
enum class RequestStatus : std::uint8_t {
  kCompleted = 0,
  kFailedOver = 1,
  kDropped = 2,
  kShed = 3,
  kAbandoned = 4,
};

/// Per-request outcome of an experiment run.
struct RequestOutcome {
  RequestId id = 0;
  double arrival_ms = 0.0;        ///< Testbed arrival time.
  DelayMs external_delay_ms = 0.0;
  DelayMs server_delay_ms = 0.0;  ///< Measured on the testbed.
  double qoe = 0.0;               ///< Q(external + server).
  int decision = -1;              ///< Replica / priority chosen (-1 default).
  RequestStatus status = RequestStatus::kCompleted;

  bool Served() const {
    return status == RequestStatus::kCompleted ||
           status == RequestStatus::kFailedOver;
  }
};

/// Resilience-layer counters for one run (docs/RESILIENCE.md). All zero
/// when no mechanism was enabled; serialized as the `resil` line so two
/// identical-seed runs must agree on every mitigation decision, not just
/// the outcomes.
struct ResilienceStats {
  std::uint64_t retries = 0;            ///< Backoff retries granted.
  std::uint64_t retries_exhausted = 0;  ///< Retry denials.
  std::uint64_t hedges_issued = 0;      ///< Hedged clone reads sent.
  std::uint64_t hedges_won = 0;         ///< Clones that beat the primary.
  std::uint64_t hedges_cancelled = 0;   ///< Loser responses discarded.
  std::uint64_t shed = 0;               ///< Requests refused by admission.
  std::uint64_t downgraded = 0;         ///< Requests demoted by admission.
  std::uint64_t breaker_opens = 0;
  std::uint64_t breaker_half_opens = 0;
  std::uint64_t breaker_closes = 0;
  std::uint64_t breaker_rejections = 0;
  /// Cloning-model windows that re-derived the hedge gates
  /// (HedgeMode::kModelDriven only; serialized only when non-zero so
  /// static-mode runs keep their historical byte stream).
  std::uint64_t model_recomputes = 0;
};

/// Aggregate result of one experiment run.
struct ExperimentResult {
  std::vector<RequestOutcome> outcomes;
  double mean_qoe = 0.0;              ///< Over served requests.
  double mean_server_delay_ms = 0.0;  ///< Over served requests.
  double throughput_rps = 0.0;
  ControllerStats controller_stats;

  /// Requests the experiment offered (the replay schedule length). The
  /// experiment runners set this; Finalize() defaults it to the outcome
  /// count for hand-built results.
  std::uint64_t arrivals = 0;
  /// Outcome counts by status, computed by Finalize().
  std::uint64_t completed = 0;
  std::uint64_t failed_over = 0;
  std::uint64_t dropped = 0;
  std::uint64_t shed = 0;
  /// Requests whose session abandoned (zero unless an abandonment model
  /// was enabled; serialized only when non-zero so stock results stay
  /// byte-identical).
  std::uint64_t abandoned = 0;

  /// Mitigation-decision counters (zeros for resilience-off runs).
  ResilienceStats resilience;

  /// Fault transitions applied during the run (fault::FaultInjector).
  std::vector<fault::InjectedFault> injected_faults;

  /// Virtual service busy time across all servers (ms) — the testbed's own
  /// resource consumption, for overhead comparisons (Fig. 16).
  double service_busy_ms = 0.0;

  /// Deterministic telemetry captured during the run (empty unless the
  /// experiment ran with `collect_telemetry`). Exported separately via its
  /// own schema-versioned writers, not by Serialize().
  obs::TelemetrySnapshot telemetry;

  /// Recomputes aggregate fields from `outcomes`.
  void Finalize();

  /// Deterministic byte-exact serialization (hexfloat doubles) of the
  /// outcomes, aggregates, controller budget stats, and injected faults,
  /// headed by obs::kResultSchemaLine. Two runs are bit-identical iff
  /// their serializations compare equal — the golden determinism tests
  /// rely on this. The controller stats line is only reproducible when the
  /// experiment profiled against the virtual clock (the default);
  /// `profile_real_clock` runs trade that away.
  [[nodiscard]] std::string Serialize() const;
};

/// Relative QoE gain of `treatment` over `baseline` in percent:
/// (Q_t - Q_b) / Q_b * 100 (§7.1's metric).
double QoeGainPercent(double baseline_mean_qoe, double treatment_mean_qoe);

/// Per-request QoE values of a result.
std::vector<double> QoeValues(std::span<const RequestOutcome> outcomes);

}  // namespace e2e
