// Cassandra-testbed experiment (§7.1): replay a trace slice against the
// replicated database at a speed-up ratio, with replica selection driven by
// one of the policies, and measure per-request QoE from the *actual*
// testbed processing delays.
#pragma once

#include <memory>
#include <span>

#include "core/failover.h"
#include "db/cluster.h"
#include "qoe/qoe_model.h"
#include "testbed/experiment_config.h"
#include "testbed/frontend.h"
#include "testbed/metrics.h"
#include "trace/replay.h"

namespace e2e {

/// Where the controller's per-request external delays come from.
enum class ExternalSource {
  kOracle,                 ///< Trace ground truth (the paper's prototype).
  kMechanisticEstimator,   ///< Frontend estimators (Sec 9 deployment mode).
};

/// Which replica-selection policy the experiment runs.
enum class DbPolicy {
  kDefault,       ///< Perfect load balancing (the paper's default).
  kLatencyAware,  ///< C3-style delay-percentile minimization (related work).
  kSlope,         ///< Slope-based table (§7.1 baseline).
  kE2e,           ///< E2E's full policy.
};

/// Experiment configuration. Shared knobs (seed, speedup, controller,
/// fault plan, ...) live in `common`; supported fault clauses here are
/// controller crashes, replica delays/partitions, and estimator skew —
/// crash windows carry their own election delay ("crash ctrl t=60s
/// for=30s").
struct DbExperimentConfig {
  ExperimentConfig common = ExperimentConfig::WithSeed(11, 20.0);
  db::ClusterParams cluster;
  std::size_t dataset_keys = 20000;
  std::size_t value_bytes = 64;
  std::size_t range_count = 100;   ///< Rows per range query (paper: 100).
  DbPolicy policy = DbPolicy::kE2e;

  /// Offline-profiling grid for the server-delay model (E2E/slope only).
  double profile_max_rps = 120.0;
  int profile_levels = 16;
  double profile_duration_ms = 30000.0;

  /// Error injection (Fig. 20); relative fractions.
  double external_delay_error = 0.0;
  double rps_error = 0.0;

  /// Epsilon spread of the probabilistic table rows (see ToSelectorEntries).
  double table_epsilon = 0.10;

  /// External-delay source for the controller (QoE is always scored with
  /// the ground truth).
  ExternalSource external_source = ExternalSource::kOracle;
  FrontendParams frontend;
};

/// Runs the experiment over `records` (one page type, arrival-ordered)
/// scored against `qoe`. Deterministic in the seed.
ExperimentResult RunDbExperiment(std::span<const TraceRecord> records,
                                 const QoeModel& qoe,
                                 const DbExperimentConfig& config);

/// Builds the profiled server-delay model matching `config`'s cluster.
std::shared_ptr<const ServerDelayModel> BuildDbServerModel(
    const DbExperimentConfig& config);

/// Converts a decision table into TableSelector entries: each bucket row
/// routes to its matched replica with probability 1 - epsilon and spreads
/// epsilon across the others (probabilistic rows, Sec 5).
std::vector<db::TableSelector::Entry> ToSelectorEntries(
    const DecisionTable& table, double epsilon = 0.0);

}  // namespace e2e
