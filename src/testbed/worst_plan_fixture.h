// The committed worst fault plan (docs/FAULTS.md "Adversarial plans").
//
// Produced by `tools/adversary` searching the fault-plan grammar against
// the AdversaryHarness db testbed (model-driven resilience enabled): the
// QoE-regression-maximizing schedule the seeded search found at the
// recorded budget. The regression test (tests/fault_test.cc) asserts
// model-driven hedging *survives* this plan — conservation holds and mean
// QoE stays above the recorded floor — and the CI smoke step
// (`tools/adversary --check`) re-evaluates the plan and compares the
// regression byte-exactly, so any drift in testbed behavior under the
// worst plan is caught, not silently absorbed.
//
// To re-derive after an intentional behavior change:
//   build/tools/adversary/adversary --seed=7 --iterations=32
// and paste the printed fixture block here.
#pragma once

#include <cstdint>

namespace e2e::fixture {

/// Search budget the fixture was recorded under.
inline constexpr std::uint64_t kWorstPlanSeed = 7;
inline constexpr int kWorstPlanIterations = 32;

/// Canonical spec text of the worst plan found (fault/plan.h grammar).
inline constexpr const char* kWorstPlanSpec =
    "partition db r=2 t=[3s,5s]; delay db +10s r=0 t=[500ms,1500ms]; "
    "delay db +5s t=[1500ms,2500ms]";

/// Exact mean-QoE regression (baseline minus worst-plan mean QoE) the
/// harness recorded for kWorstPlanSpec — hexfloat, compared with == by
/// `tools/adversary --check`.
inline constexpr double kWorstPlanRegression = 0x1.603a47807a11ep-3;

/// Mean QoE of the fault-free harness baseline (hexfloat, exact).
inline constexpr double kWorstPlanBaselineQoe = 0x1.b1cb720b6a5bbp-2;

/// Graceful-degradation floor: under the worst plan, model-driven
/// resilience must keep mean QoE at or above this fraction of the
/// fault-free baseline.
inline constexpr double kWorstPlanQoeFloorFraction = 0.5;

}  // namespace e2e::fixture
