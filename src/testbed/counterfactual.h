// Counterfactual server-delay reshuffling (§2.3) and trace-driven policy
// simulation (§7.1 "simulator").
//
// Both keep the external delay of every request and the *multiset* of
// server-side delays within each (page type, time window) group fixed, and
// only re-assign which request experiences which server-side delay:
//   * slope ranking (§2.3 / the slope-based baseline): the request with the
//     k-th smallest QoE derivative magnitude gets the k-th largest delay;
//   * optimal assignment (the E2E simulator policy): the permutation
//     maximizing the total QoE, solved as a max-weight matching on
//     Q(c_i + s_j) — this is what fixes the §3.2 non-convexity flips;
//   * zero-delay ideal: every server delay replaced with 0.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "qoe/qoe_model.h"
#include "testbed/experiment_config.h"
#include "trace/record.h"

namespace e2e {

/// How to re-assign delays within a group.
enum class ReshufflePolicy {
  kRecorded,          ///< Keep the recorded assignment (default policy).
  kSlopeRanked,       ///< §2.3 ranking by QoE-derivative magnitude.
  kOptimalMatching,   ///< E2E: max-weight assignment on exact Q(c+s).
  kZeroServerDelay,   ///< Idealized upper bound.
};

/// Per-request counterfactual outcome.
struct ReshuffledRequest {
  TraceRecord record;                ///< Original record.
  DelayMs new_server_delay_ms = 0.0; ///< Assigned server-side delay.
  double old_qoe = 0.0;              ///< Q(external + recorded).
  double new_qoe = 0.0;              ///< Q(external + assigned).

  double GainPercent() const {
    return old_qoe > 0.0 ? (new_qoe - old_qoe) / old_qoe * 100.0 : 0.0;
  }
};

/// Result over all groups.
struct ReshuffleResult {
  std::vector<ReshuffledRequest> requests;
  double old_mean_qoe = 0.0;
  double new_mean_qoe = 0.0;
  std::size_t groups = 0;

  double MeanGainPercent() const {
    return old_mean_qoe > 0.0
               ? (new_mean_qoe - old_mean_qoe) / old_mean_qoe * 100.0
               : 0.0;
  }
};

/// Selects the QoE model for a record's page type.
using QoeModelSelector = std::function<const QoeModel&(PageType)>;

/// Runs the reshuffle over `records`, grouping by page type within
/// `window_ms` windows (paper: 10 s at full trace scale; scale the window
/// with the trace so groups keep realistic sizes). Groups smaller than
/// `min_group` keep their recorded delays.
ReshuffleResult ReshuffleWithinWindows(std::span<const TraceRecord> records,
                                       const QoeModelSelector& qoe_of_page,
                                       ReshufflePolicy policy,
                                       double window_ms,
                                       std::size_t min_group = 2);

/// Applies a fault plan to a recorded trace for the trace-driven simulator
/// path, which has no event loop to hang a FaultInjector on. Clause windows
/// gate on each record's arrival time. Supported kinds transform the
/// records deterministically:
///   * `delay broker +D` / `delay db +D` (untargeted): adds D to the
///     server-side delay of every record in the window;
///   * `overload broker xF` / `overload db xF` (untargeted): multiplies the
///     server-side delay of every record in the window by F;
///   * `drop broker p=P seed=S`: removes records in the window with
///     probability P (seeded stream, iteration order = record order).
/// Every other kind (crash ctrl, partition db, skew est, replica-targeted
/// clauses) needs testbed machinery the trace simulator does not model and
/// throws std::invalid_argument naming the offending clause — a plan is
/// never silently ignored.
std::vector<TraceRecord> ApplyFaultPlanToTrace(
    std::span<const TraceRecord> records, const fault::FaultPlan& plan);

/// Config-aware trace-simulator entry: applies `config.fault_plan` to the
/// records via ApplyFaultPlanToTrace (hard error on unsupported clause
/// kinds), then reshuffles. With an empty plan this is exactly the plain
/// overload.
ReshuffleResult ReshuffleWithinWindows(std::span<const TraceRecord> records,
                                       const QoeModelSelector& qoe_of_page,
                                       ReshufflePolicy policy,
                                       double window_ms,
                                       const ExperimentConfig& config,
                                       std::size_t min_group = 2);

}  // namespace e2e
