#include "testbed/db_experiment.h"

#include <algorithm>
#include <cstddef>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/profiler.h"
#include "fault/injector.h"
#include "obs/export.h"
#include "sim/event_loop.h"

namespace e2e {

std::shared_ptr<const ServerDelayModel> BuildDbServerModel(
    const DbExperimentConfig& config) {
  ProfilerConfig profiler;
  profiler.base_service_ms = config.cluster.base_service_ms;
  profiler.capacity = config.cluster.capacity;
  profiler.service_alpha = config.cluster.service_alpha;
  profiler.service_beta = config.cluster.service_beta;
  profiler.jitter_sigma = config.cluster.jitter_sigma;
  profiler.concurrency = config.cluster.concurrency_per_replica;
  profiler.max_rps = config.profile_max_rps;
  profiler.levels = config.profile_levels;
  profiler.duration_ms = config.profile_duration_ms;
  profiler.seed = config.common.seed ^ 0x90f1ULL;
  LoadProfile profile = ProfileServerOffline(profiler);
  return std::make_shared<ProfiledReplicaModel>(config.cluster.replica_groups,
                                                std::move(profile));
}

std::vector<db::TableSelector::Entry> ToSelectorEntries(
    const DecisionTable& table, double epsilon) {
  std::vector<db::TableSelector::Entry> entries;
  entries.reserve(table.rows.size());
  const std::size_t decisions = table.load_fractions.size();
  for (const auto& row : table.rows) {
    db::TableSelector::Entry entry;
    entry.lo = row.lo;
    entry.hi = row.hi;
    // Probabilistic rows (the paper's Sec 5 table stores per-replica
    // probabilities): mostly the matched replica, with an epsilon spread
    // that keeps every bucket sampling every replica. The spread both
    // smooths bursts and keeps the sacrificial replica's backlog bounded.
    entry.probabilities.assign(
        decisions, decisions > 1
                       ? epsilon / static_cast<double>(decisions - 1)
                       : 0.0);
    entry.probabilities[static_cast<std::size_t>(row.decision)] =
        1.0 - epsilon;
    entries.push_back(std::move(entry));
  }
  return entries;
}

ExperimentResult RunDbExperiment(std::span<const TraceRecord> records,
                                 const QoeModel& qoe,
                                 const DbExperimentConfig& config) {
  if (records.empty()) {
    throw std::invalid_argument("RunDbExperiment: no records");
  }
  Rng root(config.common.seed);
  EventLoop loop;
  // Budget accounting runs on the sim's virtual clock unless the config
  // explicitly asks for real-overhead measurement (Fig. 16/17).
  const EventLoopClock loop_clock(loop);
  const Clock* profile_clock = ProfileClock(config.common, &loop_clock);
  // Telemetry always runs on the virtual clock so exports stay
  // byte-identical even when stats profiling opts into the real clock.
  obs::Telemetry telemetry(config.common.collect_telemetry, &loop_clock);
  if (telemetry.enabled()) loop.AttachMetrics(telemetry.metrics);
  db::Cluster cluster(loop, config.cluster, root.Fork(1));
  cluster.LoadDataset(config.dataset_keys, config.value_bytes);
  if (telemetry.enabled()) cluster.AttachMetrics(telemetry.metrics);

  // Sec 9 deployment mode: estimate external delays mechanistically at the
  // frontend instead of reading the oracle values.
  std::unique_ptr<Frontend> frontend;
  if (config.external_source == ExternalSource::kMechanisticEstimator) {
    frontend = std::make_unique<Frontend>(config.frontend);
    frontend->TrainRenderModel(records);
  }

  // --- Policy wiring -----------------------------------------------------
  std::shared_ptr<db::ReplicaSelector> selector;
  std::shared_ptr<db::TableSelector> table_selector;
  std::unique_ptr<ReplicatedControllerGroup> controllers;

  const bool uses_controller =
      config.policy == DbPolicy::kSlope || config.policy == DbPolicy::kE2e;
  if (uses_controller) {
    auto qoe_shared = std::shared_ptr<const QoeModel>(&qoe, [](auto*) {});
    auto server_model = BuildDbServerModel(config);
    ControllerConfig cc = config.common.controller;
    if (config.policy == DbPolicy::kSlope) {
      cc.policy.mapping = MappingAlgorithm::kSlopeBased;
    }
    auto make = [&](const char* name, std::uint64_t salt) {
      auto c = std::make_unique<Controller>(name, cc, qoe_shared, server_model,
                                            config.common.seed ^ salt,
                                            profile_clock);
      c->SetExternalDelayError(config.external_delay_error);
      c->SetRpsError(config.rps_error);
      if (telemetry.enabled()) {
        c->AttachTelemetry(telemetry.metrics, &telemetry.tracer,
                           std::string("ctrl.") + name);
      }
      return c;
    };
    controllers = std::make_unique<ReplicatedControllerGroup>(
        make("primary", 0x51ULL), make("backup", 0x52ULL), FailoverParams{});
    table_selector = std::make_shared<db::TableSelector>(
        config.policy == DbPolicy::kSlope ? "slope-table" : "e2e-table",
        root.Fork(2));
    selector = table_selector;
  } else if (config.policy == DbPolicy::kLatencyAware) {
    selector = std::make_shared<db::LatencyAwareSelector>();
  } else {
    selector = std::make_shared<db::LoadBalancedSelector>();
  }
  db::ReadExecutor executor(cluster, selector);
  if (telemetry.enabled()) executor.AttachMetrics(telemetry.metrics);

  // --- Resilience layer --------------------------------------------------
  const resilience::ResilienceConfig& resil = config.common.resilience;
  if (resil.AnyEnabled()) {
    executor.EnableResilience(resil, root.Fork(4),
                              [&qoe](const db::DbRequest& request) {
                                return qoe.Classify(request.external_delay_ms);
                              });
    if (telemetry.enabled()) {
      executor.AttachResilienceMetrics(telemetry.metrics, &telemetry.tracer);
    }
  }
  const bool model_driven =
      resil.hedge.enabled && resil.hedge.mode == resilience::HedgeMode::kModelDriven;

  // Per-replica resilience snapshot gauges (docs/RESILIENCE.md): the
  // placement co-design's controller inputs, exported through src/obs so
  // the policy shift away from un-rescuable replicas is observable.
  // Registered only in model-driven mode — stock telemetry stays
  // byte-identical.
  struct ReplicaResilienceGauges {
    obs::Gauge* utilization = nullptr;
    obs::Gauge* predicted_gain = nullptr;
    obs::Gauge* rescuable = nullptr;
    obs::Gauge* penalty = nullptr;
  };
  std::vector<ReplicaResilienceGauges> replica_gauges;
  if (model_driven && telemetry.enabled()) {
    replica_gauges.resize(static_cast<std::size_t>(cluster.NumReplicas()));
    for (int r = 0; r < cluster.NumReplicas(); ++r) {
      const std::string prefix =
          "db.resilience.replica" + std::to_string(r) + ".";
      auto& g = replica_gauges[static_cast<std::size_t>(r)];
      g.utilization = &telemetry.metrics.AddGauge(prefix + "utilization");
      g.predicted_gain =
          &telemetry.metrics.AddGauge(prefix + "predicted_gain_ms");
      g.rescuable = &telemetry.metrics.AddGauge(prefix + "rescuable");
      g.penalty = &telemetry.metrics.AddGauge(prefix + "penalty_ms");
    }
  }

  // --- Fault plan --------------------------------------------------------
  std::unique_ptr<fault::FaultInjector> injector;
  if (!config.common.fault_plan.empty()) {
    fault::FaultTargets targets;
    targets.controllers = controllers.get();
    targets.cluster = &cluster;
    targets.base_external_error = config.external_delay_error;
    if (controllers != nullptr || frontend != nullptr) {
      auto* group = controllers.get();
      auto* front = frontend.get();
      targets.apply_external_error = [group, front,
                                      base = config.external_delay_error](
                                         double error) {
        if (group != nullptr) group->SetExternalDelayError(error);
        // In estimator mode the skew also biases the frontend's tags — the
        // deployment-facing estimate path drifts with the injected error.
        if (front != nullptr) front->SetEstimateBias(error - base);
      };
    }
    injector = std::make_unique<fault::FaultInjector>(
        loop, config.common.fault_plan, std::move(targets));
    if (telemetry.enabled()) {
      injector->AttachTelemetry(telemetry.metrics, &telemetry.tracer);
    }
    injector->Arm();
  }

  // --- Session abandonment ----------------------------------------------
  // User behavior, so it keys off the *true* external delay, not the
  // frontend's estimate. The session set is only touched from event-loop
  // callbacks (single-threaded), and the counter is registered only when
  // the model is live so stock telemetry exports stay byte-identical.
  const AbandonmentModel abandonment(config.common.abandonment);
  std::unordered_set<std::uint64_t> abandoned_sessions;
  obs::Counter* metric_abandoned =
      abandonment.enabled()
          ? &telemetry.metrics.AddCounter("testbed.abandoned")
          : nullptr;
  // Running arrival/abandonment counts feed the controller's load discount
  // at each tick: sessions that quit stop offering load, so the planner
  // should stop provisioning for them (docs/OBJECTIVES.md).
  std::uint64_t arrivals_seen = 0;
  std::uint64_t arrivals_abandoned = 0;

  // --- Replay ------------------------------------------------------------
  const auto schedule = BuildReplaySchedule(records, config.common.speedup);
  ExperimentResult result;
  result.outcomes.reserve(schedule.size());
  result.arrivals = schedule.size();
  Rng keys = root.Fork(3);

  for (const auto& arrival : schedule) {
    loop.Schedule(arrival.testbed_time_ms, [&, arrival]() {
      const TraceRecord& rec = arrival.record;
      ++arrivals_seen;
      // A request from a session that already quit never reaches the
      // controller or the cluster: the user is gone, so the load is too.
      if (abandonment.enabled() &&
          abandoned_sessions.count(rec.session_id) > 0) {
        RequestOutcome outcome;
        outcome.id = rec.request_id;
        outcome.arrival_ms = loop.Now();
        outcome.external_delay_ms = rec.external_delay_ms;
        outcome.status = RequestStatus::kAbandoned;
        result.outcomes.push_back(outcome);
        ++arrivals_abandoned;
        if (metric_abandoned != nullptr) metric_abandoned->Increment();
        return;
      }
      const DelayMs tagged_external =
          frontend != nullptr ? frontend->EstimateExternal(rec)
                              : rec.external_delay_ms;
      if (controllers != nullptr) {
        controllers->ObserveArrival(tagged_external, loop.Now());
      }
      db::DbRequest request;
      request.id = rec.request_id;
      request.external_delay_ms = tagged_external;
      request.range_start = static_cast<db::Key>(keys.UniformInt(
          0, static_cast<std::int64_t>(config.dataset_keys) - 1));
      request.range_count = config.range_count;
      if (resil.hedge.enabled) {
        // Per-class hedge delay: sensitive requests hedge aggressively
        // (their QoE gains most from shaving the tail), the flat classes
        // conservatively.
        request.hedge_delay_ms =
            qoe.Classify(tagged_external) == SensitivityClass::kSensitive
                ? resil.hedge.sensitive_delay_ms
                : resil.hedge.insensitive_delay_ms;
      }
      executor.ExecuteRangeRead(
          request, [&result, rec, &qoe, &abandonment, &abandoned_sessions,
                    &arrivals_abandoned, metric_abandoned](db::ReadResult read) {
            RequestOutcome outcome;
            outcome.id = rec.request_id;
            outcome.arrival_ms = read.timing.enqueue_ms;
            outcome.external_delay_ms = rec.external_delay_ms;
            outcome.server_delay_ms = read.timing.TotalDelayMs();
            outcome.decision = read.replica;
            const double total_delay =
                rec.external_delay_ms + outcome.server_delay_ms;
            // The session quits if this delivery crossed its patience —
            // or if a sibling request already triggered the quit while
            // this one was in flight.
            if (abandonment.enabled() &&
                (abandoned_sessions.count(rec.session_id) > 0 ||
                 abandonment.Abandons(rec.session_id,
                                      qoe.Classify(rec.external_delay_ms),
                                      total_delay))) {
              outcome.status = RequestStatus::kAbandoned;
              abandoned_sessions.insert(rec.session_id);
              ++arrivals_abandoned;
              if (metric_abandoned != nullptr) {
                metric_abandoned->Increment();
              }
            } else {
              outcome.qoe = qoe.Qoe(total_delay);
              outcome.status = read.failed_over
                                   ? RequestStatus::kFailedOver
                                   : RequestStatus::kCompleted;
            }
            result.outcomes.push_back(outcome);
          });
    });
  }

  // Controller maintenance ticks across the whole replay horizon.
  const double horizon_ms =
      schedule.back().testbed_time_ms + 30000.0;  // Drain margin.
  if (controllers != nullptr) {
    for (double t = config.common.tick_interval_ms; t <= horizon_ms;
         t += config.common.tick_interval_ms) {
      loop.Schedule(t, [&]() {
        if (model_driven) {
          // Roll the cloning-model window even across arrival lulls, then
          // feed the per-replica snapshot into the next policy solve: a
          // replica the model says cloning cannot rescue is penalized by
          // its measured excess delay, so weight drifts off it.
          executor.MaybeRecomputeBudgets(loop.Now());
          const auto snapshot = executor.SnapshotResilience(loop.Now());
          std::vector<double> penalties(snapshot.size(), 0.0);
          bool any_penalty = false;
          for (std::size_t i = 0; i < snapshot.size(); ++i) {
            const db::ReplicaResilienceSnapshot& snap = snapshot[i];
            if (!snap.rescuable && snap.excess_delay_ms > 0.0) {
              penalties[i] = snap.excess_delay_ms;
              any_penalty = true;
            }
            if (!replica_gauges.empty()) {
              const auto& g = replica_gauges[i];
              g.utilization->Set(snap.utilization);
              g.predicted_gain->Set(snap.predicted_gain_ms);
              g.rescuable->Set(snap.rescuable ? 1.0 : 0.0);
              g.penalty->Set(penalties[i]);
            }
          }
          controllers->SetDecisionPenalties(
              any_penalty ? std::move(penalties) : std::vector<double>{});
        }
        if (abandonment.enabled() && arrivals_seen > 0) {
          // Live abandonment threading: plan only for the load that is
          // still offered. Capped below 1 so a fully-quit window still
          // keeps the planner well-defined.
          const double quit_fraction =
              static_cast<double>(arrivals_abandoned) /
              static_cast<double>(arrivals_seen);
          controllers->SetLoadDiscount(std::min(quit_fraction, 0.95));
        }
        if (controllers->Tick(loop.Now())) {
          const DecisionTable* table =
              controllers->active().CurrentTable();
          if (table != nullptr) {
            table_selector->SetTable(ToSelectorEntries(*table, config.table_epsilon));
          }
        }
      });
    }
  }

  loop.Run();

  // Service busy time: sum of service delays across replicas.
  for (int r = 0; r < cluster.NumReplicas(); ++r) {
    result.service_busy_ms +=
        cluster.replica(r).server().service_delay_stats().sum();
  }
  if (controllers != nullptr) {
    result.controller_stats = controllers->active().stats();
  }
  if (injector != nullptr) {
    result.injected_faults = injector->injected();
  }
  if (resil.AnyEnabled()) {
    const db::ReadResilienceStats& reads = executor.resilience_stats();
    result.resilience.retries = reads.retries;
    result.resilience.retries_exhausted = reads.retries_exhausted;
    result.resilience.hedges_issued = reads.hedges_issued;
    result.resilience.hedges_won = reads.hedges_won;
    result.resilience.hedges_cancelled = reads.hedges_cancelled;
    result.resilience.model_recomputes = reads.model_recomputes;
    const resilience::BreakerStats breakers = executor.TotalBreakerStats();
    result.resilience.breaker_opens = breakers.opens;
    result.resilience.breaker_half_opens = breakers.half_opens;
    result.resilience.breaker_closes = breakers.closes;
    result.resilience.breaker_rejections = breakers.rejections;
  }
  if (telemetry.enabled()) result.telemetry = telemetry.Snapshot();
  result.Finalize();
  return result;
}

}  // namespace e2e
