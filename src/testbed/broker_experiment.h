// RabbitMQ-testbed experiment (§7.1): replay a trace slice as published
// messages; the scheduling policy assigns priorities; a fixed-rate consumer
// drains the queues; QoE is scored from the measured queueing delay.
#pragma once

#include <memory>
#include <span>

#include "broker/broker.h"
#include "core/failover.h"
#include "qoe/qoe_model.h"
#include "testbed/experiment_config.h"
#include "testbed/metrics.h"
#include "trace/replay.h"

namespace e2e {

/// Which message-scheduling policy the experiment runs.
enum class BrokerPolicy {
  kDefault,   ///< FIFO (the paper's default).
  kSlope,     ///< Slope-based priorities.
  kE2e,       ///< E2E's full policy.
  kDeadline,  ///< Timecard-style deadline scheduler (Fig. 21).
};

/// Experiment configuration. Shared knobs (seed, speedup, controller,
/// fault plan, ...) live in `common`; supported fault clauses here are
/// controller crashes, broker drops/delays, and estimator skew — crash
/// windows carry their own election delay ("crash ctrl t=60s for=30s").
struct BrokerExperimentConfig {
  ExperimentConfig common = ExperimentConfig::WithSeed(13, 20.0);
  broker::BrokerParams broker;
  BrokerPolicy policy = BrokerPolicy::kE2e;

  /// Deadline policy parameters (Fig. 21).
  DelayMs deadline_ms = 3400.0;
  DelayMs deadline_max_slack_ms = 4000.0;

  /// Error injection (Fig. 20).
  double external_delay_error = 0.0;
  double rps_error = 0.0;
};

/// Runs the experiment over `records` scored against `qoe`.
ExperimentResult RunBrokerExperiment(std::span<const TraceRecord> records,
                                     const QoeModel& qoe,
                                     const BrokerExperimentConfig& config);

/// Builds the queueing-theoretic server-delay model matching the broker.
std::shared_ptr<const ServerDelayModel> BuildBrokerServerModel(
    const broker::BrokerParams& params);

/// Converts a decision table into TableScheduler entries.
std::vector<broker::TableScheduler::Entry> ToSchedulerEntries(
    const DecisionTable& table);

}  // namespace e2e
