// RabbitMQ-testbed experiment (§7.1): replay a trace slice as published
// messages; the scheduling policy assigns priorities; a fixed-rate consumer
// drains the queues; QoE is scored from the measured queueing delay.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>

#include "broker/broker.h"
#include "core/controller.h"
#include "core/failover.h"
#include "fault/plan.h"
#include "qoe/qoe_model.h"
#include "testbed/metrics.h"
#include "trace/replay.h"

namespace e2e {

/// Which message-scheduling policy the experiment runs.
enum class BrokerPolicy {
  kDefault,   ///< FIFO (the paper's default).
  kSlope,     ///< Slope-based priorities.
  kE2e,       ///< E2E's full policy.
  kDeadline,  ///< Timecard-style deadline scheduler (Fig. 21).
};

/// Experiment configuration.
struct BrokerExperimentConfig {
  broker::BrokerParams broker;
  double speedup = 20.0;
  BrokerPolicy policy = BrokerPolicy::kE2e;
  ControllerConfig controller;
  double tick_interval_ms = 1000.0;
  std::uint64_t seed = 13;

  /// Profile controller budget accounting against the real wall clock
  /// instead of the testbed's virtual clock (see DbExperimentConfig).
  bool profile_real_clock = false;

  /// Deadline policy parameters (Fig. 21).
  DelayMs deadline_ms = 3400.0;
  DelayMs deadline_max_slack_ms = 4000.0;

  /// Error injection (Fig. 20).
  double external_delay_error = 0.0;
  double rps_error = 0.0;

  /// Controller failure injection (Fig. 18). Prefer `fault_plan`; this
  /// legacy toggle is kept for configs that predate fault plans.
  std::optional<double> fail_primary_at_ms;
  double election_delay_ms = 25000.0;

  /// Deterministic fault plan (docs/FAULTS.md). Clauses may crash the
  /// controller, drop or delay broker messages, and skew the estimator;
  /// injected transitions are recorded in ExperimentResult.
  fault::FaultPlan fault_plan;
};

/// Runs the experiment over `records` scored against `qoe`.
ExperimentResult RunBrokerExperiment(std::span<const TraceRecord> records,
                                     const QoeModel& qoe,
                                     const BrokerExperimentConfig& config);

/// Builds the queueing-theoretic server-delay model matching the broker.
std::shared_ptr<const ServerDelayModel> BuildBrokerServerModel(
    const broker::BrokerParams& params);

/// Converts a decision table into TableScheduler entries.
std::vector<broker::TableScheduler::Entry> ToSchedulerEntries(
    const DecisionTable& table);

}  // namespace e2e
