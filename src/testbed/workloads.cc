#include "testbed/workloads.h"

#include <algorithm>

namespace e2e {

Trace MakeStandardTrace(double scale, std::uint64_t seed) {
  TraceGenParams params;
  params.seed = seed;
  params.scale = scale;
  return TraceGenerator(params).Generate();
}

std::vector<TraceRecord> HourSlice(const Trace& trace, PageType page,
                                   int begin_hour, int end_hour) {
  std::vector<TraceRecord> out;
  const double begin_ms = begin_hour * 3600.0 * 1000.0;
  const double end_ms = end_hour * 3600.0 * 1000.0;
  for (const auto& r : trace.records) {
    if (r.page_type == page && r.arrival_ms >= begin_ms &&
        r.arrival_ms < end_ms) {
      out.push_back(r);
    }
  }
  return out;
}

std::vector<TraceRecord> MakeSyntheticWorkload(
    const SyntheticWorkloadParams& params) {
  Rng rng(params.seed);
  std::vector<TraceRecord> records;
  records.reserve(params.num_requests);
  const double gap_ms = 1000.0 / params.rps;
  double t = 0.0;
  for (std::size_t i = 0; i < params.num_requests; ++i) {
    TraceRecord rec;
    rec.request_id = i + 1;
    rec.user_id = i + 1;
    rec.session_id = i + 1;
    rec.page_type = PageType::kType1;
    t += rng.ExponentialMean(gap_ms);
    rec.arrival_ms = t;
    rec.external_delay_ms = rng.TruncatedNormal(
        params.external_mean_ms,
        params.external_mean_ms * params.external_cov, 10.0);
    rec.server_delay_ms = rng.TruncatedNormal(
        params.server_mean_ms, params.server_mean_ms * params.server_cov, 1.0);
    records.push_back(rec);
  }
  return records;
}

}  // namespace e2e
