#include "testbed/metrics.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "obs/serialize.h"

namespace e2e {

void ExperimentResult::Finalize() {
  mean_qoe = 0.0;
  mean_server_delay_ms = 0.0;
  completed = 0;
  failed_over = 0;
  dropped = 0;
  shed = 0;
  abandoned = 0;
  for (const auto& o : outcomes) {
    switch (o.status) {
      case RequestStatus::kCompleted:
        ++completed;
        break;
      case RequestStatus::kFailedOver:
        ++failed_over;
        break;
      case RequestStatus::kDropped:
        ++dropped;
        break;
      case RequestStatus::kShed:
        ++shed;
        break;
      case RequestStatus::kAbandoned:
        ++abandoned;
        break;
    }
  }
  if (arrivals == 0) arrivals = outcomes.size();
  const std::uint64_t served = completed + failed_over;
  if (served == 0) {
    throughput_rps = 0.0;
    return;
  }
  bool first_seen = false;
  double first = 0.0;
  double last = 0.0;
  for (const auto& o : outcomes) {
    if (!o.Served()) continue;  // Dropped requests have no delays/QoE.
    mean_qoe += o.qoe;
    mean_server_delay_ms += o.server_delay_ms;
    if (!first_seen) {
      first_seen = true;
      first = last = o.arrival_ms;
    }
    first = std::min(first, o.arrival_ms);
    last = std::max(last, o.arrival_ms);
  }
  const auto n = static_cast<double>(served);
  mean_qoe /= n;
  mean_server_delay_ms /= n;
  throughput_rps = last > first ? n / ((last - first) / 1000.0) : 0.0;
}

std::string ExperimentResult::Serialize() const {
  // Doubles go through obs/serialize.h ("%a" hexfloat): exact rendering, so
  // equal serializations imply bit-identical results and vice versa.
  std::string out;
  out.reserve(outcomes.size() * 96 + 512);
  out += obs::kResultSchemaLine;
  out += '\n';
  obs::AppendField(&out, "arrivals", arrivals);
  out += ' ';
  obs::AppendField(&out, "completed", completed);
  out += ' ';
  obs::AppendField(&out, "failed_over", failed_over);
  out += ' ';
  obs::AppendField(&out, "dropped", dropped);
  out += ' ';
  obs::AppendField(&out, "shed", shed);
  // Emitted only when an abandonment model fired: stock scenarios keep the
  // exact historical byte stream (the golden replay regressions depend on
  // it), while abandonment runs still round-trip their conservation count.
  if (abandoned != 0) {
    out += ' ';
    obs::AppendField(&out, "abandoned", abandoned);
  }
  out += '\n';
  obs::AppendField(&out, "mean_qoe", mean_qoe);
  out += ' ';
  obs::AppendField(&out, "mean_server", mean_server_delay_ms);
  out += ' ';
  obs::AppendField(&out, "throughput", throughput_rps);
  out += ' ';
  obs::AppendField(&out, "busy", service_busy_ms);
  out += '\n';
  out += "ctrl ";
  obs::AppendField(&out, "ticks", controller_stats.ticks);
  out += ' ';
  obs::AppendField(&out, "recomputes", controller_stats.recomputes);
  out += ' ';
  obs::AppendField(&out, "decisions", controller_stats.decisions);
  out += ' ';
  obs::AppendField(&out, "recompute_us", controller_stats.total_recompute_wall_us);
  out += ' ';
  obs::AppendField(&out, "lookup_us", controller_stats.total_lookup_wall_us);
  out += '\n';
  out += "resil ";
  obs::AppendField(&out, "retries", resilience.retries);
  out += ' ';
  obs::AppendField(&out, "retry_exhausted", resilience.retries_exhausted);
  out += ' ';
  obs::AppendField(&out, "hedges", resilience.hedges_issued);
  out += ' ';
  obs::AppendField(&out, "hedge_wins", resilience.hedges_won);
  out += ' ';
  obs::AppendField(&out, "hedge_cancels", resilience.hedges_cancelled);
  out += ' ';
  obs::AppendField(&out, "shed", resilience.shed);
  out += ' ';
  obs::AppendField(&out, "downgraded", resilience.downgraded);
  out += ' ';
  obs::AppendField(&out, "breaker_opens", resilience.breaker_opens);
  out += ' ';
  obs::AppendField(&out, "breaker_half_opens", resilience.breaker_half_opens);
  out += ' ';
  obs::AppendField(&out, "breaker_closes", resilience.breaker_closes);
  out += ' ';
  obs::AppendField(&out, "breaker_rejections", resilience.breaker_rejections);
  // Like `abandoned` above: only model-driven runs carry the field, so
  // every pre-model serialization stays byte-identical.
  if (resilience.model_recomputes != 0) {
    out += ' ';
    obs::AppendField(&out, "model_recomputes", resilience.model_recomputes);
  }
  out += '\n';
  char head[64];
  for (const auto& o : outcomes) {
    std::snprintf(head, sizeof(head), "%llu s=%d d=%d ",
                  static_cast<unsigned long long>(o.id),
                  static_cast<int>(o.status), o.decision);
    out += head;
    obs::AppendField(&out, "a", o.arrival_ms);
    out += ' ';
    obs::AppendField(&out, "x", o.external_delay_ms);
    out += ' ';
    obs::AppendField(&out, "v", o.server_delay_ms);
    out += ' ';
    obs::AppendField(&out, "q", o.qoe);
    out += '\n';
  }
  for (const auto& f : injected_faults) {
    out += "fault @";
    obs::AppendHexDouble(&out, f.at_ms);
    out += ' ';
    out += f.description;
    out += '\n';
  }
  return out;
}

double QoeGainPercent(double baseline_mean_qoe, double treatment_mean_qoe) {
  if (baseline_mean_qoe <= 0.0) {
    throw std::invalid_argument("QoeGainPercent: baseline <= 0");
  }
  return (treatment_mean_qoe - baseline_mean_qoe) / baseline_mean_qoe * 100.0;
}

std::vector<double> QoeValues(std::span<const RequestOutcome> outcomes) {
  std::vector<double> values;
  values.reserve(outcomes.size());
  for (const auto& o : outcomes) values.push_back(o.qoe);
  return values;
}

}  // namespace e2e
