#include "testbed/metrics.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace e2e {

void ExperimentResult::Finalize() {
  mean_qoe = 0.0;
  mean_server_delay_ms = 0.0;
  completed = 0;
  failed_over = 0;
  dropped = 0;
  for (const auto& o : outcomes) {
    switch (o.status) {
      case RequestStatus::kCompleted:
        ++completed;
        break;
      case RequestStatus::kFailedOver:
        ++failed_over;
        break;
      case RequestStatus::kDropped:
        ++dropped;
        break;
    }
  }
  if (arrivals == 0) arrivals = outcomes.size();
  const std::uint64_t served = completed + failed_over;
  if (served == 0) {
    throughput_rps = 0.0;
    return;
  }
  bool first_seen = false;
  double first = 0.0;
  double last = 0.0;
  for (const auto& o : outcomes) {
    if (!o.Served()) continue;  // Dropped requests have no delays/QoE.
    mean_qoe += o.qoe;
    mean_server_delay_ms += o.server_delay_ms;
    if (!first_seen) {
      first_seen = true;
      first = last = o.arrival_ms;
    }
    first = std::min(first, o.arrival_ms);
    last = std::max(last, o.arrival_ms);
  }
  const auto n = static_cast<double>(served);
  mean_qoe /= n;
  mean_server_delay_ms /= n;
  throughput_rps = last > first ? n / ((last - first) / 1000.0) : 0.0;
}

std::string ExperimentResult::Serialize() const {
  // Hexfloat (%a) renders doubles exactly, so equal serializations imply
  // bit-identical results and vice versa.
  std::string out;
  out.reserve(outcomes.size() * 96 + 512);
  char line[256];
  std::snprintf(line, sizeof(line),
                "arrivals=%llu completed=%llu failed_over=%llu dropped=%llu\n",
                static_cast<unsigned long long>(arrivals),
                static_cast<unsigned long long>(completed),
                static_cast<unsigned long long>(failed_over),
                static_cast<unsigned long long>(dropped));
  out += line;
  std::snprintf(line, sizeof(line),
                "mean_qoe=%a mean_server=%a throughput=%a busy=%a\n", mean_qoe,
                mean_server_delay_ms, throughput_rps, service_busy_ms);
  out += line;
  std::snprintf(line, sizeof(line),
                "ctrl ticks=%llu recomputes=%llu decisions=%llu "
                "recompute_us=%a lookup_us=%a\n",
                static_cast<unsigned long long>(controller_stats.ticks),
                static_cast<unsigned long long>(controller_stats.recomputes),
                static_cast<unsigned long long>(controller_stats.decisions),
                controller_stats.total_recompute_wall_us,
                controller_stats.total_lookup_wall_us);
  out += line;
  for (const auto& o : outcomes) {
    std::snprintf(line, sizeof(line), "%llu s=%d d=%d a=%a x=%a v=%a q=%a\n",
                  static_cast<unsigned long long>(o.id),
                  static_cast<int>(o.status), o.decision, o.arrival_ms,
                  o.external_delay_ms, o.server_delay_ms, o.qoe);
    out += line;
  }
  for (const auto& f : injected_faults) {
    std::snprintf(line, sizeof(line), "fault @%a ", f.at_ms);
    out += line;
    out += f.description;
    out += '\n';
  }
  return out;
}

double QoeGainPercent(double baseline_mean_qoe, double treatment_mean_qoe) {
  if (baseline_mean_qoe <= 0.0) {
    throw std::invalid_argument("QoeGainPercent: baseline <= 0");
  }
  return (treatment_mean_qoe - baseline_mean_qoe) / baseline_mean_qoe * 100.0;
}

std::vector<double> QoeValues(std::span<const RequestOutcome> outcomes) {
  std::vector<double> values;
  values.reserve(outcomes.size());
  for (const auto& o : outcomes) values.push_back(o.qoe);
  return values;
}

}  // namespace e2e
