#include "testbed/metrics.h"

#include <stdexcept>

namespace e2e {

void ExperimentResult::Finalize() {
  mean_qoe = 0.0;
  mean_server_delay_ms = 0.0;
  if (outcomes.empty()) {
    throughput_rps = 0.0;
    return;
  }
  double first = outcomes.front().arrival_ms;
  double last = first;
  for (const auto& o : outcomes) {
    mean_qoe += o.qoe;
    mean_server_delay_ms += o.server_delay_ms;
    first = std::min(first, o.arrival_ms);
    last = std::max(last, o.arrival_ms);
  }
  const auto n = static_cast<double>(outcomes.size());
  mean_qoe /= n;
  mean_server_delay_ms /= n;
  throughput_rps = last > first ? n / ((last - first) / 1000.0) : 0.0;
}

double QoeGainPercent(double baseline_mean_qoe, double treatment_mean_qoe) {
  if (baseline_mean_qoe <= 0.0) {
    throw std::invalid_argument("QoeGainPercent: baseline <= 0");
  }
  return (treatment_mean_qoe - baseline_mean_qoe) / baseline_mean_qoe * 100.0;
}

std::vector<double> QoeValues(std::span<const RequestOutcome> outcomes) {
  std::vector<double> values;
  values.reserve(outcomes.size());
  for (const auto& o : outcomes) values.push_back(o.qoe);
  return values;
}

}  // namespace e2e
